// Integration tests: full pipelines exercising several modules together,
// mirroring what the examples and benchmarks do.
#include <gtest/gtest.h>

#include "algos/baselines.hpp"
#include "algos/offline.hpp"
#include "core/bounds.hpp"
#include "core/game.hpp"
#include "core/rand_pr.hpp"
#include "design/lower_bounds.hpp"
#include "gen/random_instances.hpp"
#include "gen/video.hpp"
#include "net/router_sim.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

TEST(Integration, GeneratorGameOfflineRoundTrip) {
  // generator -> game (several algorithms) -> offline opt; all benefits
  // must be feasible values below opt.
  Rng master(1);
  for (int trial = 0; trial < 10; ++trial) {
    Rng gen = master.split(trial);
    Instance inst =
        random_instance(14, 20, 3, WeightModel::uniform(1, 6), gen);
    OfflineResult opt = exact_optimum(inst);
    ASSERT_TRUE(opt.exact);

    RandPr rp(master.split(1000 + trial));
    EXPECT_LE(play(inst, rp).benefit, opt.value + 1e-9);
    for (auto& alg : make_deterministic_baselines())
      EXPECT_LE(play(inst, *alg).benefit, opt.value + 1e-9) << alg->name();
  }
}

TEST(Integration, UniformFamilyRespectsCorollary7) {
  // Uniform size AND load: E[alg] >= opt / k (Corollary 7).  Single
  // regular instance, many randPr runs.
  Rng master(2);
  Instance inst = regular_instance(24, 3, 6, WeightModel::unit(), master);
  InstanceStats st = inst.stats();
  ASSERT_TRUE(st.uniform_size && st.uniform_load);
  OfflineResult opt = exact_optimum(inst);
  ASSERT_TRUE(opt.exact);

  RunningStat benefit;
  for (int t = 0; t < 800; ++t) {
    RandPr alg(master.split(t));
    benefit.add(play(inst, alg).benefit);
  }
  double bound = corollary7_bound(st);  // = k = 3
  EXPECT_GE(benefit.mean() + benefit.ci95_halfwidth(), opt.value / bound);
}

TEST(Integration, VideoThroughRouterAndGameAgree) {
  Rng rng(3);
  VideoParams params;
  params.num_streams = 6;
  params.frames_per_stream = 12;
  VideoWorkload vw = make_video_workload(params, rng);
  RandPr a{Rng(7)}, b{Rng(7)};
  RouterStats rs = simulate_router(vw.schedule, a, 1);
  Outcome go = play(vw.schedule.to_instance(1), b);
  EXPECT_DOUBLE_EQ(rs.value_delivered, go.benefit);
}

TEST(Integration, RandPrBeatsGreedyOnAdversarialTranscript) {
  // Build the Theorem 3 trap for greedy, then compare expected benefits
  // on the SAME oblivious instance.
  GreedyFirst victim;
  AdaptiveAdversaryResult adv = run_theorem3_adversary(victim, 4, 3);
  EXPECT_LE(adv.alg_outcome.benefit, 1.0);

  Rng master(4);
  RunningStat rp_benefit;
  for (int t = 0; t < 100; ++t) {
    RandPr alg(master.split(t));
    rp_benefit.add(play(adv.transcript, alg).benefit);
  }
  EXPECT_GT(rp_benefit.mean(), adv.alg_outcome.benefit);
}

TEST(Integration, BoundsOrderingOnRandomInstances) {
  // theorem1 <= corollary6 <= naive, on any unit-capacity instance.
  Rng master(5);
  for (int trial = 0; trial < 10; ++trial) {
    Rng gen = master.split(trial);
    Instance inst = random_instance(20, 30, 3 + trial % 3,
                                    WeightModel::uniform(1, 4), gen);
    InstanceStats st = inst.stats();
    EXPECT_LE(theorem1_bound(st), corollary6_bound(st) + 1e-9);
    EXPECT_LE(corollary6_bound(st), naive_bound(st) + 1e-9);
  }
}

TEST(Integration, Lemma9EndToEnd) {
  // Draw a Lemma 9 instance, run randPr and greedy, confirm the planted
  // solution dominates both by a wide margin (the lower-bound gap).
  Rng rng(6);
  Lemma9Instance li = build_lemma9_instance(3, rng);
  double opt_lb = static_cast<double>(li.planted.size());  // 27

  Rng master(7);
  RunningStat rp;
  for (int t = 0; t < 30; ++t) {
    RandPr alg(master.split(t));
    rp.add(play(li.instance, alg).benefit);
  }
  GreedyFirst greedy;
  double greedy_benefit = play(li.instance, greedy).benefit;

  EXPECT_LT(rp.mean(), opt_lb / 2);
  EXPECT_LT(greedy_benefit, opt_lb / 2);
}

TEST(Integration, WeightedLoadIdentity) {
  // Eq. (4) of the paper: n·avg(σ$) = Σ_S |S|·w(S) <= kmax·w(C).
  Rng master(8);
  for (int trial = 0; trial < 10; ++trial) {
    Rng gen = master.split(trial);
    Instance inst =
        random_instance(15, 25, 4, WeightModel::uniform(1, 9), gen);
    InstanceStats st = inst.stats();
    double lhs = static_cast<double>(st.num_elements) * st.sigma_w_avg;
    double sum = 0;
    for (SetId s = 0; s < inst.num_sets(); ++s)
      sum += static_cast<double>(inst.set_size(s)) * inst.weight(s);
    EXPECT_NEAR(lhs, sum, 1e-6);
    EXPECT_LE(lhs, static_cast<double>(st.k_max) * st.total_weight + 1e-6);
  }
}

TEST(Integration, HashedRandPrGuaranteeHolds) {
  // The distributed variant satisfies the same Corollary 6 guarantee in
  // practice (with enough independence).
  Rng master(9);
  Instance inst = random_instance(16, 20, 3, WeightModel::unit(), master);
  InstanceStats st = inst.stats();
  OfflineResult opt = exact_optimum(inst);
  ASSERT_TRUE(opt.exact);

  RunningStat benefit;
  for (int t = 0; t < 400; ++t) {
    Rng r = master.split(t);
    auto alg = HashedRandPr::with_polynomial(8, r);
    benefit.add(play(inst, *alg).benefit);
  }
  EXPECT_GE(benefit.mean() + benefit.ci95_halfwidth(),
            opt.value / corollary6_bound(st));
}

}  // namespace
}  // namespace osp
