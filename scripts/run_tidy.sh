#!/usr/bin/env bash
# clang-tidy baseline driver.
#
# Runs the curated .clang-tidy check set over every src/ translation
# unit (headers ride along via HeaderFilterRegex), normalizes the
# findings to repo-relative sorted lines, and diffs them against
# scripts/tidy_baseline.txt.  Exit codes:
#   0  findings match the baseline (for a clean tree: zero findings)
#   1  drift — new findings, or stale baseline entries that no longer
#      fire; the diff is printed
#   2  usage error
#   3  clang-tidy required (OSP_REQUIRE_TIDY=1) but not installed
#
# Without clang-tidy installed the script SKIPS with exit 0 so local
# iteration on boxes without LLVM stays unblocked; CI sets
# OSP_REQUIRE_TIDY=1 so the gate cannot silently vanish there.
#
#   scripts/run_tidy.sh                    # check against the baseline
#   scripts/run_tidy.sh --update-baseline  # rewrite the baseline
#   OSP_CLANG_TIDY=clang-tidy-18 scripts/run_tidy.sh   # pin a binary
set -euo pipefail
cd "$(dirname "$0")/.."

mode=check
for arg in "$@"; do
  case "$arg" in
    --update-baseline) mode=update ;;
    *) echo "usage: scripts/run_tidy.sh [--update-baseline]" >&2; exit 2 ;;
  esac
done

tidy="${OSP_CLANG_TIDY:-}"
if [[ -z "${tidy}" ]]; then
  for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
              clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${cand}" > /dev/null 2>&1; then
      tidy="${cand}"
      break
    fi
  done
fi
if [[ -z "${tidy}" ]]; then
  if [[ "${OSP_REQUIRE_TIDY:-0}" == "1" ]]; then
    echo "run_tidy: clang-tidy is required (OSP_REQUIRE_TIDY=1) but not" \
         "installed" >&2
    exit 3
  fi
  echo "run_tidy: SKIP — clang-tidy not installed (the CI analysis job" \
       "runs this gate; set OSP_REQUIRE_TIDY=1 to make the skip an error)"
  exit 0
fi
echo "run_tidy: using ${tidy} ($("${tidy}" --version | sed -n 's/.*version /version /p' | head -1))"

# The compilation database comes from the tier-1 build tree
# (CMAKE_EXPORT_COMPILE_COMMANDS is always on); configure it if absent.
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . > /dev/null
fi

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "run_tidy: ${#sources[@]} translation units"

# || true: clang-tidy exits nonzero when it reports findings, but the
# gate here is the baseline diff, not the raw exit code.
raw="$(mktemp)"
trap 'rm -f "${raw}" "${raw}.norm" "${raw}.base"' EXIT
"${tidy}" -p build --quiet "${sources[@]}" > "${raw}" 2>/dev/null || true

# Normalize: keep finding lines only, strip the absolute prefix so the
# baseline is machine-independent, sort and dedupe (a header finding
# surfaces once per includer otherwise).
sed -E "s|^$(pwd)/||" "${raw}" \
  | grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' \
  | sort -u > "${raw}.norm"

if [[ "${mode}" == "update" ]]; then
  {
    sed -n '/^#/p' scripts/tidy_baseline.txt
    cat "${raw}.norm"
  } > scripts/tidy_baseline.txt
  count="$(wc -l < "${raw}.norm")"
  echo "run_tidy: baseline updated (${count} findings)"
  exit 0
fi

grep -v '^#' scripts/tidy_baseline.txt | grep -v '^$' | sort -u > "${raw}.base" || true
if ! diff -u "${raw}.base" "${raw}.norm"; then
  echo "run_tidy: FINDINGS DRIFTED from scripts/tidy_baseline.txt" >&2
  echo "run_tidy: fix the new findings (or, after review," \
       "scripts/run_tidy.sh --update-baseline)" >&2
  exit 1
fi
echo "run_tidy: OK — findings match the baseline" \
     "($(wc -l < "${raw}.norm") entries)"
