#!/usr/bin/env python3
"""Repo-specific invariant linter for the osp tree.

Generic tools (clang-tidy, the sanitizers) cannot see the invariants this
repository's determinism guarantees hang on: a stray `rand()` in a
decision path silently voids the worker-count-invariance proofs in
test_engine/test_serve, one `%g` in the wire layer breaks the sharded
merge's byte-identity, an unordered-container iteration feeding a
decision leaks hash-order into traces the suite asserts are canonical.
This linter encodes those rules, with the standard library only, in the
style of check_bench_json.py.

Rules (scripts/osp_lint.py --describe prints this table from the same
registry the checks run from, so it can never drift):

  raw-random          no rand()/srand()/std::random_device/time()/clock()
                      outside src/util — all randomness must flow through
                      util/rng so trial seeds stay grid-coordinate pure.
  unordered-iteration no iteration over std::unordered_* in src/core,
                      src/engine, src/net — hash-order leaking into a
                      decision breaks trace determinism.
  wire-float-format   float formatting in the wire/JSON layer (src/api,
                      src/stats/json.*) only via the sanctioned "%a"
                      (hexfloat round trip) and "%.17g" (JsonSink) forms;
                      iostream float manipulators are banned there too.
  registrar-anchor    every translation unit with *Registrar statics
                      defines a `void link_*() {}` force-link anchor, the
                      matching *_registry.cpp calls it, and every anchor
                      called is defined — so a static-archive link can
                      never silently drop a registered policy/ranker.
  assert-side-effect  no assert() whose argument mutates state (++/--/
                      assignment/container mutation): NDEBUG builds would
                      change behavior.
  header-hygiene      public headers start with #pragma once, never say
                      `using namespace`, and every quoted include must
                      resolve inside src/.
  nolint-justification NOLINT must name its check and carry a reason:
                      `NOLINT(check-name)` plus trailing justification.

Waivers: append `// osp-lint: allow(<rule-id>) <justification>` to the
offending line (or put it alone on the line above).  A waiver without a
justification is itself an error — the same contract the tidy baseline
enforces for NOLINT.

Usage: scripts/osp_lint.py [--root DIR] [--describe] [--selftest]
       exit 0 clean, 1 findings, 2 usage error.
--selftest runs the rules over tests/lint_fixtures/ (a tree of known-bad
snippets annotated with `osp-lint-expect: <rule-id>` lines) and fails if
any expected finding does not fire, any unexpected one does, or any rule
has no fixture exercising it.
"""

import pathlib
import re
import sys

# ----------------------------------------------------------------------
# Source scanning: rules run over comment- and string-stripped text so a
# pattern in documentation or a log message can never trip them.  Masked
# regions are replaced character-for-character (newlines kept) so line
# numbers survive; string literal *contents* are collected separately for
# the rules that inspect format strings.


class SourceFile:
    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel  # repo-relative, posix separators
        self.text = text
        self.code, self.strings, self.comments = _split_source(text)
        self.code_lines = self.code.split("\n")
        self.raw_lines = text.split("\n")
        self.comment_lines = self.comments.split("\n")

    def line_of(self, offset):
        return self.code.count("\n", 0, offset) + 1


def _split_source(text):
    """Returns (code, strings, comments): three same-shape views of text.

    code keeps code with comments and string/char literal bodies blanked;
    strings keeps ONLY string-literal bodies (so a format-string scan can
    never match a modulo expression); comments keeps only comment bodies.
    Newlines survive in all three so line numbers agree.  Raw strings are
    not handled (the tree does not use them); the fixture selftest keeps
    this honest.
    """
    code = []
    strings = []
    comments = []

    def emit(c, in_code=False, in_strings=False, in_comments=False):
        code.append(c if in_code or c == "\n" else " ")
        strings.append(c if in_strings or c == "\n" else " ")
        comments.append(c if in_comments or c == "\n" else " ")

    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                emit(c)
                emit(nxt)
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                emit(c)
                emit(nxt)
                i += 2
                continue
            if c == '"':
                state = STRING
            elif c == "'":
                state = CHAR
            emit(c, in_code=True)
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
            emit(c, in_comments=True)
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                emit(c)
                emit(nxt)
                i += 2
                continue
            emit(c, in_comments=True)
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\" and nxt:
                emit(c, in_strings=(state == STRING))
                emit(nxt, in_strings=(state == STRING))
                i += 2
                continue
            if c == quote:
                state = NORMAL
                emit(c, in_code=True)
            elif c == "\n":  # unterminated literal; keep line counts sane
                state = NORMAL
                emit(c)
            else:
                emit(c, in_strings=(state == STRING))
        i += 1
    return "".join(code), "".join(strings), "".join(comments)


# ----------------------------------------------------------------------
# Findings and waivers.


class Finding:
    def __init__(self, rel, line, rule, message):
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


WAIVER = re.compile(r"osp-lint:\s*allow\(([\w-]+)\)(.*)")


def collect_waivers(src, findings):
    """Maps (rule, line) -> waived; a bare waiver covers the next line."""
    waived = set()
    for lineno, line in enumerate(src.comment_lines, start=1):
        m = WAIVER.search(line)
        if not m:
            continue
        rule, justification = m.group(1), m.group(2).strip()
        if not justification:
            findings.append(Finding(
                src.rel, lineno, "nolint-justification",
                "osp-lint waiver carries no justification "
                "(write: // osp-lint: allow(%s) <why this is safe>)"
                % rule))
            continue
        waived.add((rule, lineno))
        # A waiver on its own line (no code before the comment) covers
        # the following line.
        if src.code_lines[lineno - 1].strip() == "":
            waived.add((rule, lineno + 1))
    return waived


# ----------------------------------------------------------------------
# Rule implementations.  Each takes the scanned file and appends
# Finding objects.  `scope` is a predicate over the repo-relative path.


def in_dirs(*prefixes):
    def pred(rel):
        return any(rel.startswith(p) for p in prefixes)
    return pred


def outside_dirs(*prefixes):
    def pred(rel):
        return rel.startswith("src/") and not any(
            rel.startswith(p) for p in prefixes)
    return pred


RAW_RANDOM_PATTERNS = (
    (re.compile(r"(?<![\w.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.])time\s*\("), "time()"),
    (re.compile(r"(?<![\w.])clock\s*\("), "clock()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\bsteady_clock\b|\bsystem_clock\b|"
                r"\bhigh_resolution_clock\b"), "std::chrono clock"),
)


def rule_raw_random(src, findings):
    for lineno, line in enumerate(src.code_lines, start=1):
        for pattern, what in RAW_RANDOM_PATTERNS:
            if pattern.search(line):
                findings.append(Finding(
                    src.rel, lineno, "raw-random",
                    f"{what} outside src/util — route randomness through "
                    f"util/rng (and timing through the bench layer) so "
                    f"decisions stay a pure function of the trial seed"))


UNORDERED_DECL = re.compile(
    r"std::unordered_(?:multi)?(?:map|set)\s*<[^;{}()]*>[&\s]+(\w+)")
RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;()]*?:\s*([^)]+)\)")
ITER_CALL = re.compile(r"\b(\w+)\s*\.\s*(?:c?r?begin|c?r?end)\s*\(")


def rule_unordered_iteration(src, findings):
    names = set(UNORDERED_DECL.findall(src.code))
    for lineno, line in enumerate(src.code_lines, start=1):
        hits = []
        for m in RANGE_FOR.finditer(line):
            expr = m.group(1).strip()
            expr_name = re.match(r"(\w+)", expr)
            if "unordered_" in expr or (
                    expr_name and expr_name.group(1) in names):
                hits.append(f"range-for over '{expr}'")
        for m in ITER_CALL.finditer(line):
            if m.group(1) in names:
                hits.append(f"iterator walk of '{m.group(1)}'")
        for what in hits:
            findings.append(Finding(
                src.rel, lineno, "unordered-iteration",
                f"{what}: hash-order iteration in a decision path leaks "
                f"platform-dependent ordering into traces the determinism "
                f"suite asserts are canonical — use a sorted container or "
                f"an index-ordered walk"))


FLOAT_CONVERSION = re.compile(
    r"%[-+ #0]*(?:\d+|\*)?(?:\.(?:\d+|\*))?(?:hh|h|ll|l|L|z|j|t)?"
    r"([aAeEfFgG])")
SANCTIONED_FLOAT = ("%a", "%.17g")
IOS_FLOAT_MANIP = re.compile(
    r"\bsetprecision\b|std::\s*(?:fixed|scientific|hexfloat|defaultfloat)\b")


def rule_wire_float_format(src, findings):
    for lineno, line in enumerate(src.strings.split("\n"), start=1):
        for m in FLOAT_CONVERSION.finditer(line):
            if m.group(0) in SANCTIONED_FLOAT:
                continue
            findings.append(Finding(
                src.rel, lineno, "wire-float-format",
                f"float conversion '{m.group(0)}' in the wire/JSON layer — "
                f"only the sanctioned '%a' (hexfloat, bit-exact round trip) "
                f"and '%.17g' (JsonSink) forms keep shard merges and JSON "
                f"artifacts byte-identical"))
    for lineno, line in enumerate(src.code_lines, start=1):
        if IOS_FLOAT_MANIP.search(line):
            findings.append(Finding(
                src.rel, lineno, "wire-float-format",
                "iostream float manipulator in the wire/JSON layer — "
                "format through the sanctioned snprintf helpers instead"))


REGISTRAR_STATIC = re.compile(r"\b(\w+)Registrar\s+\w+\s*\{")
ANCHOR_DEF = re.compile(r"\bvoid\s+(link_\w+)\s*\(\s*\)\s*\{\s*\}")
ANCHOR_CALL = re.compile(r"^\s*(link_\w+)\s*\(\s*\)\s*;", re.MULTILINE)


def check_registrar_anchors(sources, findings):
    """Cross-file rule: registrar TU <-> registry force-link anchors."""
    registries = {}   # "Policy" -> registry SourceFile
    registrars = []   # (src, first_line, kind)
    anchors_defined = {}  # name -> (src, line)
    for src in sources:
        if not src.rel.endswith(".cpp"):
            continue
        if src.rel.endswith("_registry.cpp"):
            kind = pathlib.PurePosixPath(src.rel).name[:-len("_registry.cpp")]
            registries[kind] = src
        for m in ANCHOR_DEF.finditer(src.code):
            anchors_defined[m.group(1)] = (src, src.line_of(m.start()))
        for m in REGISTRAR_STATIC.finditer(src.code):
            if src.rel.endswith("_registry.cpp"):
                continue  # the registry's own helpers are not registrars
            registrars.append((src, src.line_of(m.start()),
                               m.group(1).lower()))

    anchors_called = {}  # name -> registry src
    for kind, reg in registries.items():
        for m in ANCHOR_CALL.finditer(reg.code):
            anchors_called[m.group(1)] = reg

    seen = set()
    for src, line, kind in registrars:
        if src.rel in seen:
            continue
        seen.add(src.rel)
        defined_here = [a for a, (s, _) in anchors_defined.items()
                        if s is src]
        if not defined_here:
            findings.append(Finding(
                src.rel, line, "registrar-anchor",
                f"{kind}-registrar statics without a force-link anchor — "
                f"define `void link_<name>() {{}}` here and call it from "
                f"the registry, or a static-archive link will drop these "
                f"registrations"))
            continue
        if not any(a in anchors_called for a in defined_here):
            findings.append(Finding(
                src.rel, line, "registrar-anchor",
                f"anchor {defined_here[0]}() is defined but no "
                f"*_registry.cpp calls it — the force-link chain is "
                f"broken"))
    for name, reg in anchors_called.items():
        if name not in anchors_defined:
            findings.append(Finding(
                reg.rel, 1, "registrar-anchor",
                f"registry calls {name}() but no translation unit defines "
                f"it — stale anchor"))


ASSERT_CALL = re.compile(r"(?<!static_)(?<!_)\bassert\s*\(")
MUTATION = re.compile(
    r"\+\+|--|(?<![=!<>+\-*/%&|^])=(?![=])|"
    r"\b(?:push_back|pop_back|push|pop|erase|insert|emplace|emplace_back|"
    r"clear|reset|resize)\s*\(")


def rule_assert_side_effect(src, findings):
    for m in ASSERT_CALL.finditer(src.code):
        arg, end = _balanced(src.code, m.end() - 1)
        if arg is None:
            continue
        if MUTATION.search(arg):
            findings.append(Finding(
                src.rel, src.line_of(m.start()), "assert-side-effect",
                f"assert() argument mutates state ({arg.strip()!r}) — "
                f"NDEBUG builds compile the mutation out and change "
                f"behavior; hoist the side effect out of the assert"))


def _balanced(text, open_paren):
    """Returns (inside, end_index) for the parenthesized region."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i], i
    return None, None


USING_NAMESPACE = re.compile(r"\busing\s+namespace\b")
QUOTED_INCLUDE = re.compile(r'\s*#\s*include\s+"([^"]+)"')


def rule_header_hygiene(src, findings, root):
    stripped = [l for l in src.code_lines if l.strip()]
    first = stripped[0].strip() if stripped else ""
    if first != "#pragma once":
        findings.append(Finding(
            src.rel, 1, "header-hygiene",
            "public header does not open with #pragma once"))
    for lineno, line in enumerate(src.code_lines, start=1):
        if USING_NAMESPACE.search(line):
            findings.append(Finding(
                src.rel, lineno, "header-hygiene",
                "`using namespace` in a public header pollutes every "
                "includer's scope"))
    _check_includes(src, findings, root)


def _check_includes(src, findings, root):
    for lineno, line in enumerate(src.raw_lines, start=1):
        m = QUOTED_INCLUDE.match(line)
        if not m:
            continue
        target = m.group(1)
        from_src = root / "src" / target
        from_here = (root / src.rel).parent / target
        if not from_src.is_file() and not from_here.is_file():
            findings.append(Finding(
                src.rel, lineno, "header-hygiene",
                f'#include "{target}" resolves nowhere under src/ — '
                f"stale path"))


NOLINT = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?")
NOLINT_OK = re.compile(
    r"NOLINT(?:NEXTLINE|BEGIN|END)?\([\w,.\- *]+\)\s*\S.{9,}")


def rule_nolint_justification(src, findings):
    for lineno, line in enumerate(src.comment_lines, start=1):
        if NOLINT.search(line) and not NOLINT_OK.search(line):
            findings.append(Finding(
                src.rel, lineno, "nolint-justification",
                "NOLINT must name the suppressed check and justify it: "
                "`NOLINT(check-name) -- why this is a false positive`"))


# ----------------------------------------------------------------------
# Rule registry: (id, scope predicate, per-file fn or None, description).
# check_registrar_anchors is the one cross-file rule and runs separately.

RULES = (
    ("raw-random", outside_dirs("src/util/"), rule_raw_random,
     "no rand()/srand()/std::random_device/time()/clock()/chrono clocks "
     "outside src/util — randomness and wall time must not reach decision "
     "paths"),
    ("unordered-iteration",
     in_dirs("src/core/", "src/engine/", "src/net/"),
     rule_unordered_iteration,
     "no iteration over std::unordered_* in src/core, src/engine, "
     "src/net — hash order must not leak into decisions or traces"),
    ("wire-float-format",
     in_dirs("src/api/", "src/stats/json."), rule_wire_float_format,
     "wire/JSON float output only via the sanctioned '%a' and '%.17g' "
     "helpers; no iostream float manipulators in that layer"),
    ("registrar-anchor", None, None,
     "every *Registrar translation unit defines a void link_*() {} "
     "anchor, the matching *_registry.cpp calls it, and every called "
     "anchor is defined"),
    ("assert-side-effect", in_dirs("src/"), rule_assert_side_effect,
     "no assert() whose argument mutates state — NDEBUG builds would "
     "change behavior"),
    ("header-hygiene", in_dirs("src/"), rule_header_hygiene,
     "public headers open with #pragma once, never `using namespace`, "
     "and quoted includes must resolve under src/"),
    ("nolint-justification", in_dirs("src/"), rule_nolint_justification,
     "NOLINT and osp-lint waivers must name their check and carry a "
     "written justification"),
)

RULE_IDS = tuple(r[0] for r in RULES)


def scan_tree(root):
    sources = []
    src_root = root / "src"
    if not src_root.is_dir():
        raise SystemExit(f"osp_lint: no src/ directory under {root}")
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(root).as_posix()
        sources.append(SourceFile(path, rel, path.read_text()))
    return sources


def run_rules(root, sources):
    findings = []
    waivers = {}
    for src in sources:
        waivers[src.rel] = collect_waivers(src, findings)
    for rule_id, scope, fn, _ in RULES:
        if fn is None:
            continue
        for src in sources:
            if not scope(src.rel):
                continue
            if rule_id == "header-hygiene":
                if src.rel.endswith(".hpp"):
                    fn(src, findings, root)
            else:
                fn(src, findings)
    check_registrar_anchors(sources, findings)
    kept = []
    for f in findings:
        if (f.rule, f.line) in waivers.get(f.rel, set()):
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.rel, f.line, f.rule))
    return kept


# ----------------------------------------------------------------------
# Selftest over tests/lint_fixtures/: every fixture file annotates the
# findings it must produce with `osp-lint-expect: <rule-id>` lines (one
# per expected finding; rule granularity, not line granularity, so
# fixtures stay readable).  The selftest fails on a missing expected
# finding, an unexpected finding, or a rule no fixture exercises.

EXPECT = re.compile(r"osp-lint-expect:\s*([\w-]+)")


def selftest(repo_root):
    fixture_root = repo_root / "tests" / "lint_fixtures"
    if not fixture_root.is_dir():
        raise SystemExit(f"osp_lint: fixture tree {fixture_root} missing")
    sources = scan_tree(fixture_root)
    if not sources:
        raise SystemExit("osp_lint: fixture tree holds no sources")
    findings = run_rules(fixture_root, sources)

    failures = []
    got = {}
    for f in findings:
        got.setdefault(f.rel, []).append(f.rule)
    for src in sources:
        expected = EXPECT.findall(src.text)
        actual = got.get(src.rel, [])
        for rule in set(expected):
            want, have = expected.count(rule), actual.count(rule)
            if have != want:
                failures.append(
                    f"{src.rel}: expected {want} finding(s) of [{rule}], "
                    f"linter produced {have}")
        for rule in set(actual):
            if rule not in expected:
                failures.append(
                    f"{src.rel}: unexpected finding(s) of [{rule}] "
                    f"(add an osp-lint-expect line if intentional)")
    exercised = {f.rule for f in findings}
    for rule_id in RULE_IDS:
        if rule_id not in exercised:
            failures.append(
                f"rule [{rule_id}] fired on no fixture — add a known-bad "
                f"snippet under tests/lint_fixtures/ or the rule can rot")

    if failures:
        for msg in failures:
            print(f"osp_lint selftest: {msg}", file=sys.stderr)
        return 1
    print(f"osp_lint selftest: OK ({len(sources)} fixtures, "
          f"{len(findings)} expected findings, all {len(RULE_IDS)} rules "
          f"exercised)")
    return 0


def describe():
    print("osp_lint rules (what this linter enforces):")
    for rule_id, scope, _, description in RULES:
        print(f"  {rule_id}:")
        for chunk in _wrap(description, 66):
            print(f"      {chunk}")
    print("  waiver syntax: // osp-lint: allow(<rule-id>) <justification>")
    print("  (a waiver without a justification is itself a finding)")
    print("adding a rule: implement rule_<name>(src, findings), register")
    print("it in RULES with a scope predicate and description, and add a")
    print("known-bad fixture under tests/lint_fixtures/ — the selftest")
    print("fails any rule with no fixture exercising it.")
    return 0


def _wrap(text, width):
    words, line = text.split(), ""
    for w in words:
        if line and len(line) + 1 + len(w) > width:
            yield line
            line = w
        else:
            line = f"{line} {w}" if line else w
    if line:
        yield line


def main(argv):
    root = pathlib.Path(__file__).resolve().parent.parent
    args = argv[1:]
    if "--describe" in args:
        return describe()
    if "--selftest" in args:
        return selftest(root)
    if args and args[0] == "--root":
        if len(args) < 2:
            raise SystemExit("osp_lint: --root needs a directory")
        root = pathlib.Path(args[1])
        args = args[2:]
    if args:
        raise SystemExit(f"usage: osp_lint.py [--root DIR] [--describe] "
                         f"[--selftest] (unknown: {' '.join(args)})")
    sources = scan_tree(root)
    findings = run_rules(root, sources)
    for f in findings:
        print(f, file=sys.stderr)
    if findings:
        print(f"osp_lint: {len(findings)} finding(s) over "
              f"{len(sources)} files", file=sys.stderr)
        return 1
    print(f"osp_lint: OK ({len(sources)} files clean, "
          f"{len(RULE_IDS)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
