#!/usr/bin/env bash
# Repository check.
#
# Full mode (default, what CI always runs):
#   1. tier-1 verify: configure + build + ctest (includes the osp_lint
#      selftest + clean-tree pass registered as ctest tests);
#   2. bench-JSON schema check: every BENCH_*.json artifact parses and
#      carries the keys the perf trajectory depends on;
#   3. invariant lint: scripts/osp_lint.py fixture selftest + the src/
#      tree pass (redundant with ctest when GTest/Python are present —
#      explicit here so a missing interpreter can't silently drop it);
#   4. clang-tidy baseline: scripts/run_tidy.sh diffs the curated check
#      set against scripts/tidy_baseline.txt (SKIPs with a notice when
#      clang-tidy is not installed; the CI analysis job requires it);
#   5. examples smoke: runs osp_cli end to end off the policy/scenario
#      registries (list, gen | run pipe, a small bench grid) plus
#      quickstart, so the examples cannot silently rot;
#   6. shard smoke: bench --shard / merge bit-identity round trip;
#   7. adversarial dashboard: BENCH_adversarial.json regenerates byte-
#      identically, re-passes the paper's-bounds gates, and the theorem3
#      smoke grid shards/merges bit-identically;
#   8. ASan/UBSan build of the engine-critical tests plus a sanitized
#      `bench_router --smoke`, and the forced-ISA equivalence sweep;
#   9. TSan: a -DOSP_SANITIZE=thread build of the threaded suites
#      (test_engine's 1/2/5-thread batch determinism, test_serve's
#      workers-1/2/4 equivalence) and the sustained serving smoke at
#      --workers 4, under scripts/tsan.supp — a data race in the barrier
#      or tally-merge paths fails the check even when the deterministic
#      output happens to look right.
#
# Quick mode (scripts/check.sh --quick, for local iteration):
#   runs stages 1-3 only and PRINTS the stages it skipped, so what CI
#   will additionally run is always visible.  CI never uses --quick; a
#   change is not green until the full script passes.
#
# Tidy mode (scripts/check.sh --tidy): stage 4 alone, for iterating on
#   tidy findings without rebuilding the world.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
for arg in "$@"; do
  case "$arg" in
    --quick) mode=quick ;;
    --tidy) mode=tidy ;;
    *) echo "usage: scripts/check.sh [--quick | --tidy]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

if [[ "${mode}" == "tidy" ]]; then
  echo "== clang-tidy baseline (scripts/run_tidy.sh) =="
  scripts/run_tidy.sh
  exit 0
fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "${jobs}"
(cd build && ctest --output-on-failure -j "${jobs}")

echo
echo "== bench artifacts: BENCH_*.json schema check =="
python3 scripts/check_bench_json.py

echo
echo "== invariant lint: osp_lint selftest + src/ tree =="
python3 scripts/osp_lint.py --selftest
python3 scripts/osp_lint.py

if [[ "${mode}" == "quick" ]]; then
  echo
  echo "== quick mode: SKIPPED stages (CI runs them all) =="
  echo "   - clang-tidy baseline (scripts/run_tidy.sh; or check.sh --tidy)"
  echo "   - examples smoke (osp_cli + quickstart)"
  echo "   - shard smoke (bench --shard / merge bit-identity)"
  echo "   - ASan/UBSan suites + forced-ISA sweep + bench_router --smoke"
  echo "   - TSan threaded suites + sustained smoke"
  echo "== all quick checks passed =="
  exit 0
fi

echo
echo "== clang-tidy baseline (scripts/run_tidy.sh) =="
scripts/run_tidy.sh

echo
echo "== examples smoke: osp_cli (registry-driven) + quickstart =="
./build/osp_cli list > /dev/null
./build/osp_cli gen random --seed 3 | ./build/osp_cli run --alg randpr
./build/osp_cli bench --scenario random --alg randpr,greedy:maxw --trials 50
# Config-file scenario (with a sweep axis) and the buffered-ranker mode.
printf '%s\n' 'scenario = regular' 'm = 12' 'sigma = 3' 'sweep.k = 2,3' \
  > build/check_demo.cfg
./build/osp_cli bench --config build/check_demo.cfg --alg randpr --trials 20
./build/osp_cli bench --scenario router/buffered-smoke \
  --ranker randPr,drop-tail --trials 4
# Sustained serving runtime: a multi-worker smoke run (each row carries a
# serial-reference cross-check) and the unknown-scenario error path,
# which must enumerate the catalog rather than fail bare.
./build/osp_cli bench --scenario sustained/steady-smoke --sustained \
  --workers 2
if ./build/osp_cli bench --scenario sustained/no-such --sustained \
    2> build/check_sustained_err.txt; then
  echo "unknown sustained scenario unexpectedly succeeded" >&2
  exit 1
fi
grep -q "registered scenarios" build/check_sustained_err.txt
rm -f build/check_sustained_err.txt
# docs/CATALOG.md is generated output: regenerate and fail on drift.
./build/osp_cli list --markdown | diff -u docs/CATALOG.md -
./build/quickstart > /dev/null

echo
echo "== shard smoke: bench --shard / merge bit-identity =="
# The sharding contract end to end: the dry-run cell list, a 3-shard
# split of a small sweep, the partial-format validator, and a merge that
# must reproduce the unsharded BENCH artifact byte for byte.  CI's
# shard-matrix job runs the same check over the larger catalog sweeps.
rm -f BENCH_shardsmoke.json build/shardsmoke_*.part build/shardsmoke_merged.json
./build/osp_cli bench --scenario engine/ladder --alg randpr,greedy:maxw \
  --trials 3 --seed 11 --dry-run > /dev/null
./build/osp_cli bench --scenario engine/ladder --alg randpr,greedy:maxw \
  --trials 3 --seed 11 --json shardsmoke > /dev/null
for i in 0 1 2; do
  ./build/osp_cli bench --scenario engine/ladder --alg randpr,greedy:maxw \
    --trials 3 --seed 11 --json shardsmoke \
    --shard "$i/3" --out "build/shardsmoke_$i.part" > /dev/null
done
python3 scripts/check_bench_json.py build/shardsmoke_*.part
./build/osp_cli merge build/shardsmoke_*.part --out build/shardsmoke_merged.json
cmp BENCH_shardsmoke.json build/shardsmoke_merged.json
# Overlapping partials must fail with an enumerated error, not merge.
if ./build/osp_cli merge build/shardsmoke_0.part build/shardsmoke_0.part \
    build/shardsmoke_1.part build/shardsmoke_2.part \
    --out build/shardsmoke_bad.json 2> build/shardsmoke_err.txt; then
  echo "overlapping-partials merge unexpectedly succeeded" >&2
  exit 1
fi
grep -q "overlap" build/shardsmoke_err.txt
rm -f BENCH_shardsmoke.json build/shardsmoke_*.part \
  build/shardsmoke_merged.json build/shardsmoke_err.txt

echo
echo "== adversarial dashboard: regenerate + gates + shard smoke =="
# BENCH_adversarial.json has no wall-clock fields: regenerating it must
# reproduce the committed artifact byte for byte and re-pass the
# paper's-bounds gates in check_bench_json.py.  The theorem3 smoke grid
# then exercises the adversarial families through the generic shard
# pipeline (CI's examples job runs the same probe at N in {1, 2}).
# The results are thread-count-independent; OSP_THREADS pins only the
# preamble's recorded worker count to the committed value.
OSP_THREADS=1 ./build/bench_adversarial > /dev/null
git diff --exit-code BENCH_adversarial.json
python3 scripts/check_bench_json.py BENCH_adversarial.json
rm -f BENCH_advsmoke.json build/advsmoke_*.part build/advsmoke_merged.json
./build/osp_cli bench --scenario adversarial/theorem3-smoke \
  --alg randpr,greedy:first --trials 25 --seed 11 --json advsmoke > /dev/null
for i in 0 1; do
  ./build/osp_cli bench --scenario adversarial/theorem3-smoke \
    --alg randpr,greedy:first --trials 25 --seed 11 --json advsmoke \
    --shard "$i/2" --out "build/advsmoke_$i.part" > /dev/null
done
python3 scripts/check_bench_json.py build/advsmoke_*.part
./build/osp_cli merge build/advsmoke_*.part --out build/advsmoke_merged.json
cmp BENCH_advsmoke.json build/advsmoke_merged.json
rm -f BENCH_advsmoke.json build/advsmoke_*.part build/advsmoke_merged.json

echo
echo "== sanitizers: ASan/UBSan build of fuzz + engine + queue tests =="
cmake -B build-asan -S . -DOSP_SANITIZE=ON
cmake --build build-asan -j "${jobs}" --target test_fuzz test_engine test_game test_instance test_rand_pr test_net test_queue test_serve test_simd bench_router
(cd build-asan && ctest --output-on-failure -R 'test_(fuzz|engine|game|instance|rand_pr|net|queue|serve|simd)')

echo
echo "== sanitizers: forced-ISA decision equivalence smoke =="
# Every ISA tier this CPU can run must produce identical decisions under
# ASan/UBSan; the available set comes from the version subcommand so the
# loop adapts to the host (scalar-only, x86, aarch64) automatically.
isas="$(./build/osp_cli version | sed -n 's/^isa\.available: //p')"
echo "available tiers: ${isas}"
for isa in ${isas}; do
  echo "-- OSP_FORCE_ISA=${isa}"
  (cd build-asan && OSP_FORCE_ISA="${isa}" \
    ctest --output-on-failure -R 'test_(simd|engine)' > /dev/null)
done
# Forcing an unknown ISA must fail loudly — never fall back silently.
if OSP_FORCE_ISA=bogus ./build/osp_cli version > /dev/null 2>&1; then
  echo "OSP_FORCE_ISA=bogus unexpectedly succeeded" >&2
  exit 1
fi

echo
echo "== sanitizers: bench_router --smoke (heap vs sort cross-check) =="
(cd build-asan && ./bench_router --smoke)

echo
echo "== TSan: threaded suites + sustained smoke (race detection) =="
# The determinism proofs (batch runner at 1/2/5 threads, serve workers
# 1/2/4 vs the serial reference) assert equal OUTPUT; ThreadSanitizer
# asserts the stronger property that no heap cell is ever touched by two
# threads without a happens-before edge, so a benign-looking race cannot
# hide behind a lucky schedule.  scripts/tsan.supp is empty on purpose.
cmake -B build-tsan -S . -DOSP_SANITIZE=thread
cmake --build build-tsan -j "${jobs}" --target test_engine test_serve osp_cli
export TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp"
(cd build-tsan && ctest --output-on-failure -R 'test_(engine|serve)')
./build-tsan/osp_cli bench --scenario sustained/steady-smoke --sustained \
  --workers 4
unset TSAN_OPTIONS

echo
echo "== all checks passed =="
