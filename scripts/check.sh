#!/usr/bin/env bash
# Repository check: the tier-1 verify plus an ASan/UBSan build of the
# engine-critical tests (the fuzz suite, the flat-engine golden tests,
# and the router-queue suites), and a sanitized `bench_router --smoke`
# run so the indexed-heap queue is exercised against the full-sort
# reference cross-check on every repository check.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "${jobs}"
(cd build && ctest --output-on-failure -j "${jobs}")

echo
echo "== sanitizers: ASan/UBSan build of fuzz + engine + queue tests =="
cmake -B build-asan -S . -DOSP_SANITIZE=ON
cmake --build build-asan -j "${jobs}" --target test_fuzz test_engine test_game test_instance test_rand_pr test_net test_queue bench_router
(cd build-asan && ctest --output-on-failure -R 'test_(fuzz|engine|game|instance|rand_pr|net|queue)')

echo
echo "== sanitizers: bench_router --smoke (heap vs sort cross-check) =="
(cd build-asan && ./bench_router --smoke)

echo
echo "== all checks passed =="
