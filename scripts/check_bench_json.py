#!/usr/bin/env python3
"""Schema check for the BENCH_*.json perf-trajectory artifacts.

Every bench binary emits a machine-readable JSON file next to its console
table; downstream tooling (and the per-PR perf trajectory) keys on a small
set of invariants that a bench refactor could silently break.  This script
validates, with the standard library only:

  * every BENCH_*.json parses as strict JSON (no NaN/Infinity literals);
  * the shared preamble is intact: {"bench": <str>, "threads": <int >= 1>,
    "results": [<object>, ...]} with a non-empty results array;
  * bench-specific invariants:
      - engine:  per-workload rows carry the mode throughputs and factors
                 (seed/flat/block/block-scalar/batch elements-per-sec,
                 flat_speedup, block_vs_flat, simd_vs_scalar,
                 batch_speedup) plus the ISA tier the block kernel ran on;
                 the block-vs-flat gate is checked PER ROW against a
                 per-workload floor (the old single-gate-on-the-largest-
                 workload check was blind to sigma-dependent regressions
                 on the smaller shapes); the largest_summary row carries
                 threads, the ISA, and the gate fields;
      - engine_isa: one row per workload x ISA tier from
                 `bench_perf --isa-sweep`, each with a passing cross_check
                 and a scalar row to anchor vs_scalar;
      - router:  "throughput" sweep rows carry speedup_vs_sort,
                 cross_check, and the ISA tier; "sustained" rows (the
                 multi-link serving runtime) carry the full steady-state
                 counter set — drop taxonomy summing to the drop total,
                 window-goodput aggregates, serve/drop latency
                 percentiles, per-stream starvation counters — with a
                 passing serial-reference cross_check, and exactly one
                 sustained_summary row whose packets_per_sec gate is MET
                 against SUSTAINED_MIN_PACKETS_PER_SEC;
      - adversarial: the competitive-ratio dashboard.  theorem3 rows must
                 keep deterministic benefit <= 1 against opt >= the
                 planted sigma^(k-1) witness, with randPr strictly beating
                 every deterministic baseline per cell; weaklb/lemma9 rows
                 carry witnesses equal to the documented planted values
                 (t and ell^3) and ratios above calibrated per-cell floors
                 tracking the t/ln t and ell^3/polylog envelopes; opt
                 never drops below the witness, lp_upper (when computed)
                 dominates opt, and the three summary rows all gate MET;
  * ISA names are one of scalar/sse2/avx2/neon;
  * every numeric value is finite.

Files beginning with the "osp-shard 1" magic are validated as sharded
partial-result files instead (`osp_cli bench --shard i/N --out PART`):
manifest header (bench, 16-hex fingerprint, shard i/N with i < N, cell
range begin..end/total, threads >= 1), `---` separator, row blocks
(`row <cell>` with sequential global cell indices, typed `<tag> k=v`
cell lines with finite hexfloat doubles, `end`), and a `total <rows>`
footer matching the slice size — docs/BENCHMARKS.md documents the
grammar.  Directories only glob BENCH_*.json; pass partial files
explicitly.

Usage: scripts/check_bench_json.py [file-or-dir ...]
       (defaults to the repository root; exits non-zero on any violation)
       scripts/check_bench_json.py --describe
       (prints the validated field lists — the same tuples the checks
       iterate, so the printed schema can never drift from the validator;
       docs/BENCHMARKS.md documents the semantics)
"""

import json
import math
import pathlib
import re
import sys

ENGINE_WORKLOAD_KEYS = (
    "workload", "m", "n", "trials", "isa",
    "seed_elements_per_sec", "flat_elements_per_sec",
    "block_elements_per_sec", "block_scalar_elements_per_sec",
    "batch_elements_per_sec",
    "flat_speedup", "block_speedup", "block_vs_flat", "simd_vs_scalar",
    "batch_speedup",
)
ENGINE_SUMMARY_KEYS = (
    "label", "threads", "isa", "flat_speedup_vs_seed",
    "block_speedup_vs_seed", "block_vs_flat", "simd_vs_scalar",
    "speedup_vs_seed",
)
ENGINE_ISA_KEYS = (
    "workload", "m", "n", "trials", "isa",
    "block_elements_per_sec", "vs_scalar", "cross_check",
)
ROUTER_THROUGHPUT_KEYS = (
    "path", "buffer", "slots", "packets", "seconds", "slots_per_sec",
    "speedup_vs_sort", "cross_check", "isa",
)
ROUTER_SUSTAINED_KEYS = (
    "scenario", "ranker", "links", "workers", "streams", "service_rate",
    "buffer", "window", "slots", "packets", "served", "dropped",
    "refused_dead", "evictions", "cascade_drops", "leftover",
    "goodput", "window_goodput_mean", "window_goodput_min",
    "serve_p50", "serve_p90", "serve_p99",
    "drop_p50", "drop_p90", "drop_p99",
    "streams_starved", "starved_slots_max", "starved_share",
    "seconds", "packets_per_sec", "cross_check",
)
ROUTER_SUSTAINED_SUMMARY_KEYS = (
    "label", "ranker", "workers", "packets_per_sec",
    "min_packets_per_sec", "gate",
)

ADVERSARIAL_ROW_KEYS = (
    "sweep", "scenario", "policy", "deterministic", "trials",
    "alg_mean", "alg_ci95", "witness", "opt", "opt_exact", "lp_upper",
    "ratio", "bound",
)
# Per-family shape key carried by every adversarial per-cell row.
ADVERSARIAL_SHAPE_KEYS = {"theorem3": ("sigma", "k"), "weaklb": ("t",),
                          "lemma9": ("ell",)}
ADVERSARIAL_SUMMARY_KEYS = (
    "sweep", "family", "cells", "policies", "det_alg_max",
    "det_ratio_min", "randpr_margin_min", "gate",
)

VALID_ISAS = ("scalar", "sse2", "avx2", "neon")

# Per-workload floors for the block-vs-flat factor, sized ~30-40%% below
# the values measured on the reference container so scheduler noise
# cannot flap CI while a real kernel regression (or a silently-scalar
# build) still trips them.  The old gate checked only the largest
# workload, whose sigma~16 rows vectorize best -- a regression confined
# to the small-sigma shapes was invisible.  Workloads not listed get
# BLOCK_VS_FLAT_DEFAULT_FLOOR, which just catches "block path slower
# than flat".
BLOCK_VS_FLAT_FLOORS = {
    # reference run (fused histogram + batched kernel): 1.37 / 1.75 /
    # 1.65 / 2.07 / 2.11 / 2.22 in the order below
    "legacy/64": 1.0,
    "legacy/1024": 1.2,
    "legacy/4096": 1.15,
    "router/32k": 1.4,
    "router/128k": 1.4,
    "overload/256k": 1.5,
}
BLOCK_VS_FLAT_DEFAULT_FLOOR = 0.9

# Floor for the sustained runtime's steady-state packet rate (the best
# randPr worker count on the full sustained/steady scenario), sized well
# below the reference-container measurement for the same noise headroom
# as the block_vs_flat floors.  This constant is the source of truth;
# bench_router.cpp mirrors it to print the gate line.
SUSTAINED_MIN_PACKETS_PER_SEC = 2.0e6

# Per-cell competitive-ratio floors for the adversarial lower-bound
# sweeps, sized ~35% below the smallest ratio ANY policy (deterministic
# or randPr) measures on the reference grids, so trial noise cannot flap
# CI while a broken gadget (or a bug inflating E[alg]) still trips them.
# The floors track the paper's envelopes: t/ln t for the Section 4.2
# warm-up, and Omega(ell^3 / polylog ell) for the Lemma 9 distribution
# (opt = ell^3 planted while every online algorithm keeps polylog
# benefit).  A grid cell with no floor entry fails the check, so growing
# the catalog sweep forces a calibrated floor here.
WEAKLB_RATIO_FLOORS = {
    # reference minima across policies: 1.80 / 2.73 / 3.56 / 5.22 /
    # 6.88 / 9.80 in the order below
    4: 1.15, 6: 1.75, 8: 2.3, 12: 3.4, 16: 4.5, 24: 6.4,
}
LEMMA9_RATIO_FLOORS = {
    # reference minima across policies: 2.40 / 7.04 / 17.45 / 30.0
    2: 1.55, 3: 4.5, 4: 11.0, 5: 19.5,
}


def fail(path, message):
    raise SystemExit(f"check_bench_json: {path}: {message}")


def require_keys(path, row, keys, context):
    for key in keys:
        if key not in row:
            fail(path, f"{context} is missing required key '{key}'")


def check_finite(path, value, context):
    if isinstance(value, float) and not math.isfinite(value):
        fail(path, f"{context} holds a non-finite number ({value!r})")
    if isinstance(value, dict):
        for k, v in value.items():
            check_finite(path, v, f"{context}.{k}")
    if isinstance(value, list):
        for i, v in enumerate(value):
            check_finite(path, v, f"{context}[{i}]")


def check_isa(path, row, context):
    if row.get("isa") not in VALID_ISAS:
        fail(path, f"{context} has unknown isa {row.get('isa')!r} "
                   f"(valid: {', '.join(VALID_ISAS)})")


def check_engine(path, results):
    summaries = [r for r in results if r.get("workload") == "largest_summary"]
    workloads = [r for r in results if r.get("workload") != "largest_summary"]
    if not workloads:
        fail(path, "engine bench has no per-workload rows")
    for row in workloads:
        context = f"workload row {row.get('workload')!r}"
        require_keys(path, row, ENGINE_WORKLOAD_KEYS, context)
        check_isa(path, row, context)
        floor = BLOCK_VS_FLAT_FLOORS.get(row["workload"],
                                         BLOCK_VS_FLAT_DEFAULT_FLOOR)
        if row["block_vs_flat"] < floor:
            fail(path, f"{context}: block_vs_flat {row['block_vs_flat']:.3f} "
                       f"is below its per-workload floor {floor}")
    if len(summaries) != 1:
        fail(path, f"expected exactly one largest_summary row, "
                   f"found {len(summaries)}")
    require_keys(path, summaries[0], ENGINE_SUMMARY_KEYS,
                 "largest_summary row")
    check_isa(path, summaries[0], "largest_summary row")
    labels = {r["workload"] for r in workloads}
    if summaries[0]["label"] not in labels:
        fail(path, "largest_summary.label names no measured workload")


def check_engine_isa(path, results):
    by_workload = {}
    for row in results:
        context = (f"engine_isa row {row.get('workload')!r}"
                   f"/{row.get('isa')!r}")
        require_keys(path, row, ENGINE_ISA_KEYS, context)
        check_isa(path, row, context)
        if row["cross_check"] != "pass":
            fail(path, f"{context} records a failed cross-tier cross_check")
        by_workload.setdefault(row["workload"], []).append(row)
    for workload, rows in by_workload.items():
        isas = [r["isa"] for r in rows]
        if len(set(isas)) != len(isas):
            fail(path, f"workload {workload!r} lists a duplicate ISA row")
        scalar = [r for r in rows if r["isa"] == "scalar"]
        if len(scalar) != 1:
            fail(path, f"workload {workload!r} has no scalar anchor row")
        if abs(scalar[0]["vs_scalar"] - 1.0) > 1e-9:
            fail(path, f"workload {workload!r}: scalar row's vs_scalar "
                       f"is {scalar[0]['vs_scalar']!r}, expected 1.0")


def check_router(path, results):
    throughput = [r for r in results if r.get("sweep") == "throughput"]
    if not throughput:
        fail(path, "router bench has no throughput sweep rows")
    for row in throughput:
        require_keys(path, row, ROUTER_THROUGHPUT_KEYS, "throughput row")
        check_isa(path, row, "throughput row")
        if row["path"] not in ("sort", "heap"):
            fail(path, f"throughput row has unknown path {row['path']!r}")
        if not row["cross_check"]:
            fail(path, "throughput row records a failed heap-vs-sort "
                       "cross_check")

    sustained = [r for r in results if r.get("sweep") == "sustained"]
    if not sustained:
        fail(path, "router bench has no sustained runtime rows")
    for row in sustained:
        context = (f"sustained row {row.get('scenario')!r}"
                   f"/{row.get('ranker')!r}")
        require_keys(path, row, ROUTER_SUSTAINED_KEYS, context)
        if row["cross_check"] != "pass":
            fail(path, f"{context} records a failed serial-reference "
                       f"cross_check")
        if row["packets"] != row["served"] + row["dropped"]:
            fail(path, f"{context}: served + dropped != packets")
        taxonomy = (row["refused_dead"] + row["evictions"]
                    + row["cascade_drops"] + row["leftover"])
        if taxonomy != row["dropped"]:
            fail(path, f"{context}: drop taxonomy sums to {taxonomy}, "
                       f"not the {row['dropped']} dropped packets")
        for key in ("goodput", "starved_share"):
            if not 0.0 <= row[key] <= 1.0:
                fail(path, f"{context}: {key} {row[key]!r} outside [0, 1]")
        # Window ratios are >= 0 but can exceed 1: a frame offered at the
        # end of one window may complete (deliver) early in the next.
        for key in ("window_goodput_mean", "window_goodput_min"):
            if row[key] < 0.0:
                fail(path, f"{context}: {key} {row[key]!r} is negative")
    summaries = [r for r in results if r.get("sweep") == "sustained_summary"]
    if len(summaries) != 1:
        fail(path, f"expected exactly one sustained_summary row, "
                   f"found {len(summaries)}")
    require_keys(path, summaries[0], ROUTER_SUSTAINED_SUMMARY_KEYS,
                 "sustained_summary row")
    if summaries[0]["gate"] != "MET":
        fail(path, f"sustained_summary gate is {summaries[0]['gate']!r}")
    if summaries[0]["packets_per_sec"] < SUSTAINED_MIN_PACKETS_PER_SEC:
        fail(path, f"sustained packets_per_sec "
                   f"{summaries[0]['packets_per_sec']:.3g} is below the "
                   f"floor {SUSTAINED_MIN_PACKETS_PER_SEC:.3g}")


def check_adversarial(path, results):
    eps = 1e-9
    families = {"theorem3": [], "weaklb": [], "lemma9": []}
    summaries = []
    for row in results:
        sweep = row.get("sweep")
        if sweep == "summary":
            summaries.append(row)
        elif sweep in families:
            families[sweep].append(row)
        else:
            fail(path, f"adversarial row has unknown sweep {sweep!r}")

    for family, rows in families.items():
        if not rows:
            fail(path, f"adversarial bench has no {family!r} rows")
        shape_keys = ADVERSARIAL_SHAPE_KEYS[family]
        for row in rows:
            context = (f"{family} row {row.get('scenario')!r}"
                       f"/{row.get('policy')!r}")
            require_keys(path, row, ADVERSARIAL_ROW_KEYS + shape_keys,
                         context)
            for key in ("deterministic", "opt_exact"):
                if not isinstance(row[key], bool):
                    fail(path, f"{context}: {key!r} is not a bool")
            if row["alg_mean"] <= 0 or row["ratio"] <= 0:
                fail(path, f"{context}: alg_mean/ratio must be positive")
            # The planted witness is a certified feasible packing, so any
            # denominator below it means the offline solver regressed.
            if row["opt"] < row["witness"] - eps:
                fail(path, f"{context}: opt {row['opt']!r} is below the "
                           f"planted witness {row['witness']!r}")
            # lp_upper is 0 when the cell was too large for the simplex;
            # when computed it must dominate the exact/witness optimum.
            if row["lp_upper"] != 0 and row["lp_upper"] < row["opt"] - 1e-6:
                fail(path, f"{context}: lp_upper {row['lp_upper']!r} is "
                           f"below opt {row['opt']!r}")

    # Theorem 3: deterministic benefit <= 1 while opt >= sigma^(k-1), and
    # randPr must beat every deterministic baseline on the same cell.
    by_cell = {}
    for row in families["theorem3"]:
        context = (f"theorem3 row {row.get('scenario')!r}"
                   f"/{row.get('policy')!r}")
        witness = float(row["sigma"] ** (row["k"] - 1))
        if abs(row["witness"] - witness) > eps:
            fail(path, f"{context}: witness {row['witness']!r} != "
                       f"sigma^(k-1) = {witness}")
        if abs(row["bound"] - witness) > eps:
            fail(path, f"{context}: bound {row['bound']!r} != "
                       f"sigma^(k-1) = {witness}")
        if row["deterministic"] and row["alg_mean"] > 1.0 + eps:
            fail(path, f"{context}: deterministic benefit "
                       f"{row['alg_mean']!r} exceeds the Theorem 3 "
                       f"guarantee of 1")
        by_cell.setdefault(row["scenario"], []).append(row)
    for cell, rows in by_cell.items():
        det = [r for r in rows if r["deterministic"]]
        rand = [r for r in rows if not r["deterministic"]]
        if not det:
            fail(path, f"theorem3 cell {cell!r} has no deterministic rows")
        if len(rand) != 1:
            fail(path, f"theorem3 cell {cell!r} has {len(rand)} randomized "
                       f"rows, expected exactly one (randPr)")
        det_max = max(r["alg_mean"] for r in det)
        if rand[0]["alg_mean"] <= det_max:
            fail(path, f"theorem3 cell {cell!r}: randPr E[benefit] "
                       f"{rand[0]['alg_mean']:.4g} does not beat the best "
                       f"deterministic baseline ({det_max:.4g})")

    for family, floors, shape_key, witness_of in (
            ("weaklb", WEAKLB_RATIO_FLOORS, "t", lambda s: float(s)),
            ("lemma9", LEMMA9_RATIO_FLOORS, "ell", lambda s: float(s ** 3))):
        for row in families[family]:
            context = (f"{family} row {row.get('scenario')!r}"
                       f"/{row.get('policy')!r}")
            shape = row[shape_key]
            if abs(row["witness"] - witness_of(shape)) > eps:
                fail(path, f"{context}: witness {row['witness']!r} does "
                           f"not match the documented planted value for "
                           f"{shape_key}={shape}")
            if shape not in floors:
                fail(path, f"{context}: no calibrated ratio floor for "
                           f"{shape_key}={shape} (add one to "
                           f"{family.upper()}_RATIO_FLOORS)")
            if row["ratio"] < floors[shape]:
                fail(path, f"{context}: ratio {row['ratio']:.4g} is below "
                           f"its floor {floors[shape]} for "
                           f"{shape_key}={shape}")

    if len(summaries) != 3:
        fail(path, f"expected exactly 3 adversarial summary rows, "
                   f"found {len(summaries)}")
    seen = set()
    for row in summaries:
        context = f"summary row {row.get('family')!r}"
        require_keys(path, row, ADVERSARIAL_SUMMARY_KEYS, context)
        seen.add(row["family"])
        if row["gate"] != "MET":
            fail(path, f"{context}: gate is {row['gate']!r}")
        if row["family"] == "theorem3":
            if row["det_alg_max"] > 1.0 + eps:
                fail(path, f"{context}: det_alg_max {row['det_alg_max']!r} "
                           f"exceeds the Theorem 3 guarantee of 1")
            if row["randpr_margin_min"] <= 0:
                fail(path, f"{context}: randpr_margin_min "
                           f"{row['randpr_margin_min']!r} is not positive — "
                           f"randPr must beat every deterministic baseline")
    if seen != set(families):
        fail(path, f"summary families {sorted(seen)} != "
                   f"{sorted(families)}")


BENCH_CHECKS = {"engine": check_engine, "engine_isa": check_engine_isa,
                "router": check_router, "adversarial": check_adversarial}


def reject_constant(value):
    raise ValueError(f"non-finite JSON literal {value!r}")


# ----------------------------------------------------------------------
# Sharded partial-result files (osp_cli bench --shard i/N --out PART).

SHARD_MAGIC = "osp-shard 1"
SHARD_TAGS = "biuds"
SHARD_HEX_FINGERPRINT = re.compile(r"^[0-9a-f]{16}$")


def check_wire_payload(path, lineno, tag, payload):
    where = f"line {lineno}"
    if tag == "b":
        if payload not in ("true", "false"):
            fail(path, f"{where}: bool payload must be true/false, "
                       f"got {payload!r}")
    elif tag in ("i", "u"):
        if not re.fullmatch(r"-?\d+" if tag == "i" else r"\d+", payload):
            fail(path, f"{where}: malformed integer payload {payload!r}")
    elif tag == "d":
        try:
            value = float.fromhex(payload)
        except ValueError:
            fail(path, f"{where}: double payload {payload!r} is not C "
                       f"hexfloat")
        if not math.isfinite(value):
            fail(path, f"{where}: double payload {payload!r} is not finite")
    # tag "s": any escaped one-line text is fine; escapes checked below.
    if tag == "s" and re.search(r"\\(?![\\nr])", payload):
        fail(path, f"{where}: string payload {payload!r} has an unknown "
                   f"or dangling escape")


def check_partial(path, text):
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    pos = 0

    def take(prefix):
        nonlocal pos
        if pos >= len(lines) or not lines[pos].startswith(prefix):
            got = lines[pos] if pos < len(lines) else "<eof>"
            fail(path, f"line {pos + 1}: expected '{prefix}...', got {got!r}")
        value = lines[pos][len(prefix):]
        pos += 1
        return value

    if take("") != SHARD_MAGIC:  # full first line must be the magic
        fail(path, f"line 1: first line is not '{SHARD_MAGIC}'")
    bench = take("bench ")
    if not bench:
        fail(path, "line 2: empty bench name")
    fingerprint = take("fingerprint ")
    if not SHARD_HEX_FINGERPRINT.fullmatch(fingerprint):
        fail(path, f"line 3: fingerprint {fingerprint!r} is not 16 "
                   f"lowercase hex digits")
    shard = take("shard ")
    m = re.fullmatch(r"(\d+)/(\d+)", shard)
    if not m or not int(m.group(1)) < int(m.group(2)):
        fail(path, f"line 4: shard {shard!r} is not i/N with 0 <= i < N")
    cells = take("cells ")
    m = re.fullmatch(r"(\d+)\.\.(\d+)/(\d+)", cells)
    if not m:
        fail(path, f"line 5: cells {cells!r} is not begin..end/total")
    begin, end, total = (int(g) for g in m.groups())
    if not begin <= end <= total:
        fail(path, f"line 5: cell range violates begin <= end <= total")
    threads = take("threads ")
    if not threads.isdigit() or int(threads) < 1:
        fail(path, f"line 6: threads {threads!r} is not a positive integer")
    if take("") != "---":
        fail(path, "line 7: missing '---' header separator")

    rows = 0
    while pos < len(lines) and lines[pos].startswith("row "):
        cell = lines[pos][4:]
        if not cell.isdigit() or int(cell) != begin + rows:
            fail(path, f"line {pos + 1}: row cell {cell!r} breaks the "
                       f"sequential order from {begin}")
        pos += 1
        cells_in_row = 0
        while pos < len(lines) and lines[pos] != "end":
            line = lines[pos]
            if len(line) < 2 or line[0] not in SHARD_TAGS or line[1] != " ":
                fail(path, f"line {pos + 1}: malformed cell line {line!r}")
            key, eq, payload = line[2:].partition("=")
            if not key or eq != "=":
                fail(path, f"line {pos + 1}: cell line has no key=payload")
            check_wire_payload(path, pos + 1, line[0], payload)
            cells_in_row += 1
            pos += 1
        if pos >= len(lines):
            fail(path, "row block is missing its 'end' line (truncated?)")
        if cells_in_row == 0:
            fail(path, f"line {pos + 1}: row block has no cell lines")
        pos += 1  # consume "end"
        rows += 1

    footer = take("total ")
    if not footer.isdigit() or int(footer) != rows:
        fail(path, f"footer 'total {footer}' does not match the {rows} "
                   f"row blocks present (truncated file?)")
    if rows != end - begin:
        fail(path, f"{rows} rows but the manifest slice holds "
                   f"{end - begin} cells")
    if pos != len(lines):
        fail(path, f"line {pos + 1}: trailing content after the footer")
    return rows


def check_file(path):
    text = path.read_text()
    if text.startswith(SHARD_MAGIC):
        return check_partial(path, text)
    try:
        doc = json.loads(text, parse_constant=reject_constant)
    except ValueError as err:
        fail(path, f"does not parse as strict JSON: {err}")
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    require_keys(path, doc, ("bench", "threads", "results"), "document")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail(path, "'bench' is not a non-empty string")
    if not isinstance(doc["threads"], int) or doc["threads"] < 1:
        fail(path, "'threads' is not a positive integer")
    results = doc["results"]
    if not isinstance(results, list) or not results:
        fail(path, "'results' is not a non-empty array")
    for i, row in enumerate(results):
        if not isinstance(row, dict) or not row:
            fail(path, f"results[{i}] is not a non-empty object")
    check_finite(path, doc, "document")
    extra = BENCH_CHECKS.get(doc["bench"])
    if extra is not None:
        extra(path, results)
    return len(results)


def collect(args):
    if not args:
        args = [pathlib.Path(__file__).resolve().parent.parent]
    files = []
    for arg in args:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("BENCH_*.json")))
        else:
            files.append(p)
    return files


def describe():
    """Prints the validated schema from the same tuples check_file uses."""
    print("BENCH_*.json schema (what this script validates):")
    print("  document preamble: bench (non-empty str), threads (int >= 1),")
    print("                     results (non-empty array of objects)")
    print("  engine workload row keys: " + ", ".join(ENGINE_WORKLOAD_KEYS))
    print("  engine largest_summary row keys: "
          + ", ".join(ENGINE_SUMMARY_KEYS))
    print("  engine_isa row keys: " + ", ".join(ENGINE_ISA_KEYS))
    print("  router throughput row keys: " + ", ".join(ROUTER_THROUGHPUT_KEYS))
    print("  router sustained row keys: " + ", ".join(ROUTER_SUSTAINED_KEYS))
    print("  router sustained_summary row keys: "
          + ", ".join(ROUTER_SUSTAINED_SUMMARY_KEYS))
    print("  adversarial row keys: " + ", ".join(ADVERSARIAL_ROW_KEYS))
    for family, keys in sorted(ADVERSARIAL_SHAPE_KEYS.items()):
        print(f"    + {family} shape keys: " + ", ".join(keys))
    print("  adversarial summary row keys: "
          + ", ".join(ADVERSARIAL_SUMMARY_KEYS))
    print("  weaklb per-t ratio floors (t/ln t envelope):")
    for t, floor in sorted(WEAKLB_RATIO_FLOORS.items()):
        print(f"    t={t}: >= {floor}")
    print("  lemma9 per-ell ratio floors (ell^3/polylog envelope):")
    for ell, floor in sorted(LEMMA9_RATIO_FLOORS.items()):
        print(f"    ell={ell}: >= {floor}")
    print("  valid isa values: " + ", ".join(VALID_ISAS))
    print("  block_vs_flat per-workload floors "
          "(default %s):" % BLOCK_VS_FLAT_DEFAULT_FLOOR)
    for workload, floor in sorted(BLOCK_VS_FLAT_FLOORS.items()):
        print(f"    {workload}: >= {floor}")
    print("  sustained packets_per_sec floor: >= %.3g"
          % SUSTAINED_MIN_PACKETS_PER_SEC)
    print("  every numeric value finite; strict JSON (no NaN/Infinity)")
    print("partial-result files (magic '%s'):" % SHARD_MAGIC)
    print("  header: bench <name>, fingerprint <16 hex>, shard i/N (i < N),")
    print("          cells begin..end/total (begin <= end <= total),")
    print("          threads <int >= 1>, then '---'")
    print("  rows: 'row <cell>' blocks with sequential cells from begin,")
    print("        cell lines '<tag> key=payload' with tag in '%s',"
          % SHARD_TAGS)
    print("        doubles as finite C hexfloat; then 'end'")
    print("  footer: 'total <rows>' matching both the blocks and the slice")
    return 0


def main(argv):
    if "--describe" in argv[1:]:
        return describe()
    files = collect(argv[1:])
    if not files:
        raise SystemExit("check_bench_json: no BENCH_*.json files found")
    for path in files:
        rows = check_file(path)
        print(f"check_bench_json: {path.name}: OK ({rows} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
