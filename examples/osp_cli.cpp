// osp_cli — command-line driver for the library, built entirely on the
// experiment API layer (src/api): policies and workloads resolve through
// the registries, runs go through a Session, and results stream through
// ResultSinks.
//
//   osp_cli list  [--policies] [--scenarios] [--rankers] [--markdown]
//   osp_cli gen   <scenario> [--out FILE] [--seed S] [--m M] [--n N] ...
//   osp_cli stats <file|->
//   osp_cli run   [file|-] [--alg SPEC] [--seed S] [--trials T]
//   osp_cli solve <file|->
//   osp_cli bench [--scenario NAMES] [--config FILE] [--alg SPECS]
//                 [--ranker NAMES] [--trials T] [--seed S] [--json NAME]
//                 [--dry-run] [--shard i/N --out PART]
//   osp_cli merge PART... (--json NAME | --out FILE)
//   osp_cli version
//
// `list` enumerates everything the registries know; adding a policy, a
// scenario, or a ranker in its home file makes it appear here (and in
// `bench`, and in the test sweeps) with no CLI change.  `list --markdown`
// emits the same catalog as the markdown document checked in as
// docs/CATALOG.md (CI regenerates it and fails on drift).  Scenarios with
// sweep axes expand into one bench column per cell; `bench --config`
// loads a scenario (axes included) from a key=value file, and
// `bench --ranker` sweeps the buffered-router FrameRankers over a video
// scenario instead of packing policies.
//
// Sharded grids: `bench --dry-run` prints the expanded cell list without
// running anything; `bench --shard i/N --out PART` runs only shard i's
// contiguous slice of the cells and writes a partial-result file; `merge`
// validates that partial files tile the grid exactly (matching
// fingerprints, no gaps, no overlaps — enumerated errors otherwise) and
// replays the rows through JsonSink, producing a BENCH_*.json that is
// bit-identical to the unsharded `bench --json` run.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algos/offline.hpp"
#include "api/policy_registry.hpp"
#include "api/ranker_registry.hpp"
#include "api/result_sink.hpp"
#include "api/scenario.hpp"
#include "api/session.hpp"
#include "api/shard.hpp"
#include "engine/batch_runner.hpp"
#include "net/serve.hpp"
#include "core/bounds.hpp"
#include "core/cpu_features.hpp"
#include "core/game.hpp"
#include "core/io.hpp"
#include "engine/trial.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/require.hpp"

namespace osp::cli {
namespace {

struct Args {
  std::string command;
  std::vector<std::string> positionals;
  std::map<std::string, std::string> options;

  /// The single file/name argument most commands take (`merge` is the
  /// one command that accepts several).
  std::string positional() const {
    return positionals.empty() ? std::string() : positionals.front();
  }
  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  /// Strict numeric flag parse; fails through RequireError naming the
  /// flag (the seed CLI aborted with an uncaught std::invalid_argument).
  std::size_t get_num(const std::string& key, std::size_t fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    return api::parse_size("flag --" + key, it->second);
  }
};

/// Flags that are pure switches (no value follows them).
bool is_boolean_flag(const std::string& name) {
  return name == "policies" || name == "scenarios" || name == "rankers" ||
         name == "markdown" || name == "dry-run" || name == "sustained";
}

Args parse(int argc, char** argv) {
  Args args;
  OSP_REQUIRE_MSG(argc >= 2, "usage: osp_cli <command> ... (see --help)");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string word = argv[i];
    if (word.rfind("--", 0) == 0) {
      if (is_boolean_flag(word.substr(2))) {
        args.options[word.substr(2)] = "";
        continue;
      }
      OSP_REQUIRE_MSG(i + 1 < argc, "missing value for " << word);
      args.options[word.substr(2)] = argv[++i];
    } else {
      args.positionals.push_back(word);
    }
  }
  return args;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Applies every generator flag present on the command line to `spec`
/// (run-plumbing flags are skipped).
api::ScenarioSpec& apply_overrides(api::ScenarioSpec& spec,
                                   const Args& args) {
  for (const auto& [key, value] : args.options) {
    if (key == "out" || key == "seed" || key == "trials" || key == "alg" ||
        key == "scenario" || key == "json" || key == "config" ||
        key == "ranker" || key == "shard" || key == "dry-run" ||
        key == "sustained" || key == "workers")
      continue;  // run plumbing, not generator parameters
    spec.set(key, value);
  }
  return spec;
}

/// Copies the named scenario out of the registry and applies every
/// generator flag present on the command line.
api::ScenarioSpec scenario_from(const Args& args, const std::string& name) {
  api::ScenarioSpec spec = api::scenarios().at(name);
  return apply_overrides(spec, args);
}

Instance load_from(const std::string& where) {
  if (where.empty() || where == "-") return read_instance(std::cin);
  return load_instance(where);
}

int cmd_list(const Args& args) {
  // No section flag: every section.  Any section flag selects only the
  // named sections.
  const bool any = args.has("policies") || args.has("scenarios") ||
                   args.has("rankers");
  const bool show_policies = !any || args.has("policies");
  const bool show_scenarios = !any || args.has("scenarios");
  const bool show_rankers = !any || args.has("rankers");

  if (args.has("markdown")) {
    // The markdown catalog is checked in as docs/CATALOG.md and CI
    // regenerates it on every run — the output here must stay
    // byte-stable for a given registry state.
    std::cout << "# osp catalog — policies, scenarios, rankers\n\n"
              << "Generated by `osp_cli list --markdown`; regenerate with\n"
              << "`./build/osp_cli list --markdown > docs/CATALOG.md`.\n"
              << "CI rebuilds this file and fails on drift — edit the\n"
              << "registries, never this document.\n";
    if (show_policies)
      std::cout << "\n## Policies (" << api::policies().entries().size()
                << ")\n\n"
                << api::policies().render_markdown();
    if (show_scenarios)
      std::cout << "\n## Scenarios (" << api::scenarios().entries().size()
                << ")\n\n"
                << api::scenarios().render_markdown();
    if (show_rankers)
      std::cout << "\n## Rankers (" << api::rankers().entries().size()
                << ")\n\n"
                << api::rankers().render_markdown();
    return 0;
  }

  if (show_policies) {
    std::cout << "policies (" << api::policies().entries().size() << "):\n"
              << api::policies().render_catalog();
  }
  if (show_scenarios) {
    if (show_policies) std::cout << '\n';
    std::cout << "scenarios (" << api::scenarios().entries().size()
              << "):\n"
              << api::scenarios().render_catalog();
  }
  if (show_rankers) {
    if (show_policies || show_scenarios) std::cout << '\n';
    std::cout << "rankers (" << api::rankers().entries().size() << "):\n"
              << api::rankers().render_catalog();
  }
  return 0;
}

int cmd_gen(const Args& args) {
  OSP_REQUIRE_MSG(!args.positional().empty(),
                  "gen needs a scenario name; registered scenarios:\n"
                      << api::scenarios().render_catalog());
  api::ScenarioSpec spec = scenario_from(args, args.positional());
  if (!spec.sweep.empty())
    std::cerr << "note: scenario '" << spec.name
              << "' declares sweep axes; gen builds the base cell only "
                 "(bench expands the grid)\n";
  Rng rng(args.get_num("seed", 1));
  Instance inst = api::build_instance(spec, rng);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    write_instance(std::cout, inst);
  } else {
    save_instance(out, inst);
    std::cerr << "wrote " << inst.describe() << " to " << out << "\n";
  }
  return 0;
}

int cmd_stats(const Args& args) {
  OSP_REQUIRE_MSG(!args.positional().empty(),
                  "stats needs a file (or '-' for stdin)");
  Instance inst = load_from(args.positional());
  InstanceStats st = inst.stats();
  Table t({"quantity", "value"});
  t.row({"sets (m)", fmt(st.num_sets)});
  t.row({"elements (n)", fmt(st.num_elements)});
  t.row({"total weight", fmt(st.total_weight, 3)});
  t.row({"kmax", fmt(st.k_max)});
  t.row({"k avg", fmt(st.k_avg, 3)});
  t.row({"sigma max", fmt(st.sigma_max)});
  t.row({"sigma avg", fmt(st.sigma_avg, 3)});
  t.row({"nu avg (adjusted)", fmt(st.nu_avg, 3)});
  t.row({"uniform size", st.uniform_size ? "yes" : "no"});
  t.row({"uniform load", st.uniform_load ? "yes" : "no"});
  t.row({"unit capacity", st.unit_capacity ? "yes" : "no"});
  t.row({"Theorem 1 bound", fmt(theorem1_bound(st), 3)});
  t.row({"Corollary 6 bound", fmt(corollary6_bound(st), 3)});
  if (!st.unit_capacity) t.row({"Theorem 4 bound", fmt(theorem4_bound(st), 3)});
  t.print(std::cout);
  return 0;
}

int cmd_run(const Args& args) {
  const std::string name = args.get("alg", "randpr");
  const std::size_t trials = args.get_num("trials", 1);
  Rng master(args.get_num("seed", 1));

  // Resolve before touching the input so an unknown spec fails with the
  // registry catalog in the message, whatever state the instance is in.
  const api::PolicyInfo& policy = api::policies().at(name);
  // A bare `run` on a terminal would block forever waiting for an
  // instance; only read stdin implicitly when something is piped in.
  OSP_REQUIRE_MSG(!args.positional().empty() || !isatty(fileno(stdin)),
                  "run needs a file (or pipe an instance in / pass '-')");
  Instance inst = load_from(args.positional());

  RunningStat benefit;
  std::size_t completed = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    auto alg = policy.make(master.split(t));
    Outcome out = play(inst, *alg);
    benefit.add(out.benefit);
    completed = out.completed.size();
  }
  if (trials == 1) {
    std::cout << policy.name << ": completed " << completed
              << " sets, benefit " << benefit.mean() << "\n";
  } else {
    std::cout << policy.name << " over " << trials
              << " trials: E[benefit] = " << benefit.mean() << " +/- "
              << benefit.ci95_halfwidth() << "\n";
  }
  return 0;
}

int cmd_solve(const Args& args) {
  OSP_REQUIRE_MSG(!args.positional().empty(),
                  "solve needs a file (or '-' for stdin)");
  Instance inst = load_from(args.positional());
  OfflineResult greedy = greedy_offline(inst);
  OfflineResult opt = exact_optimum(inst);
  double lp = inst.num_sets() <= 120 ? lp_upper_bound(inst) : -1;
  Table t({"solver", "value", "note"});
  t.row({"greedy offline", fmt(greedy.value, 3), "k-approximation"});
  t.row({"branch & bound", fmt(opt.value, 3),
         opt.exact ? "exact" : "node limit hit (lower bound)"});
  if (lp >= 0) t.row({"LP relaxation", fmt(lp, 3), "upper bound"});
  t.print(std::cout);
  return 0;
}

/// Opens the optional --json sink, refusing to overwrite any existing
/// BENCH_*.json (the bench binaries' committed artifacts carry
/// schema-gated key sets a CLI grid would break).
std::unique_ptr<api::JsonSink> open_json_sink(const Args& args,
                                              api::Session& session) {
  if (!args.has("json")) return nullptr;
  const std::string json_name = args.get("json", "cli");
  OSP_REQUIRE_MSG(!json_name.empty(),
                  "--json needs a non-empty artifact name");
  const std::string json_path = "BENCH_" + json_name + ".json";
  OSP_REQUIRE_MSG(!std::ifstream(json_path).good(),
                  json_path << " already exists; refusing to overwrite "
                               "— pick another name or remove it first");
  auto json = std::make_unique<api::JsonSink>(json_name, session.threads());
  session.attach(*json);
  return json;
}

/// `bench --ranker`: sweeps buffered-router FrameRankers over the
/// expanded video scenario cells instead of packing policies.  Each
/// (cell, ranker) pair runs `trials` independent workload draws on the
/// shared batch runner and emits one row of mean counters.
int bench_rankers(const Args& args, api::Session& session,
                  const std::vector<api::ScenarioSpec>& cells, int trials,
                  std::uint64_t seed) {
  const std::vector<std::string> ranker_names =
      split_commas(args.get("ranker", ""));
  OSP_REQUIRE_MSG(!ranker_names.empty(),
                  "--ranker needs ranker names; registered rankers:\n"
                      << api::rankers().render_catalog());
  // Resolve every name and validate every cell up front, so an unknown
  // ranker or a non-video scenario fails before any work runs — and
  // before the --json sink creates its never-overwrite artifact file.
  for (const std::string& name : ranker_names) api::rankers().at(name);
  for (const api::ScenarioSpec& cell : cells)
    OSP_REQUIRE_MSG(cell.family == api::ScenarioFamily::kVideo,
                    "--ranker drives the buffered router and needs a video "
                    "scenario; '"
                        << cell.name << "' is not one");

  api::TableSink table;
  session.attach(table);
  std::unique_ptr<api::JsonSink> json = open_json_sink(args, session);

  Rng master(seed);
  const std::size_t draws = static_cast<std::size_t>(trials);
  std::vector<BufferedRouterScratch> scratch(
      engine::shared_runner().num_threads());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const api::ScenarioSpec& cell = cells[c];
    // Per-(cell, draw) streams, split serially up front (deterministic
    // for any worker count).  Each cell splits its own child generator,
    // and inside it the workload and ranker families use disjoint key
    // ranges (draws is capped at 1e9 by the --trials bound), so no two
    // (cell, draw, family) streams can collide.
    Rng cell_master = master.split(c);
    std::vector<Rng> wl_rngs, rk_rngs;
    for (std::size_t d = 0; d < draws; ++d) {
      wl_rngs.push_back(cell_master.split(d));
      rk_rngs.push_back(cell_master.split(1000000000 + d));
    }
    for (const std::string& name : ranker_names) {
      const api::RankerInfo& info = api::rankers().at(name);
      auto stats = engine::shared_runner().map<RouterStats>(
          draws, [&](std::size_t d, engine::TrialContext& ctx) {
            Rng wl_rng = wl_rngs[d];
            VideoWorkload vw = api::build_video(cell, wl_rng);
            auto ranker = info.make(rk_rngs[d]);
            BufferedRouterParams rp{.service_rate = cell.service_rate,
                                    .buffer_size = cell.buffer,
                                    .drop_dead_frames = true};
            return simulate_buffered_router(vw.schedule, *ranker, rp,
                                            &scratch[ctx.thread_index]);
          });
      double goodput = 0, served = 0, dropped = 0;
      for (const RouterStats& st : stats) {
        goodput += st.goodput();
        served += static_cast<double>(st.packets_served);
        dropped += static_cast<double>(st.packets_dropped);
      }
      const double n = static_cast<double>(draws);
      session.emit(api::Row{}
                       .add("scenario", cell.display_label())
                       .add("ranker", info.name)
                       .add("buffer", cell.buffer)
                       .add("service_rate", cell.service_rate)
                       .add("trials", draws)
                       .add("goodput_mean", goodput / n)
                       .add("served_mean", served / n)
                       .add("dropped_mean", dropped / n));
    }
  }
  session.close_sinks();
  table.print(std::cout);
  if (json != nullptr)
    std::cerr << "wrote BENCH_" << args.get("json", "cli") << ".json\n";
  return 0;
}

/// `bench --sustained`: runs the multi-link serving runtime over the
/// expanded video scenario cells.  Each (cell, ranker) pair is one long
/// deterministic run (seed picks the workload draw), cross-checked
/// against the serial reference runner before its row is emitted — the
/// `cross_check` column records that the multi-worker run reproduced the
/// reference stats exactly.
int bench_sustained(const Args& args, api::Session& session,
                    const std::vector<api::ScenarioSpec>& cells,
                    std::uint64_t seed) {
  const std::vector<std::string> ranker_names =
      args.has("ranker") ? split_commas(args.get("ranker", ""))
                         : std::vector<std::string>{"randPr"};
  OSP_REQUIRE_MSG(!ranker_names.empty(),
                  "--ranker needs ranker names; registered rankers:\n"
                      << api::rankers().render_catalog());
  const std::size_t workers = args.get_num("workers", 1);
  OSP_REQUIRE_MSG(workers >= 1 && workers <= 256,
                  "flag --workers must be in [1, 256], got " << workers);
  // Resolve every name and validate every cell up front, so an unknown
  // ranker or a non-video scenario fails before any work runs — and
  // before the --json sink creates its never-overwrite artifact file.
  for (const std::string& name : ranker_names) api::rankers().at(name);
  for (const api::ScenarioSpec& cell : cells)
    OSP_REQUIRE_MSG(cell.family == api::ScenarioFamily::kVideo,
                    "--sustained serves video workloads; '"
                        << cell.name << "' is not one");

  api::TableSink table;
  session.attach(table);
  std::unique_ptr<api::JsonSink> json = open_json_sink(args, session);

  Rng master(seed);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const api::ScenarioSpec& cell = cells[c];
    // One workload draw per cell; the ranker stream lives in a disjoint
    // split range so adding rankers never perturbs the workload.
    Rng cell_master = master.split(c);
    Rng wl_rng = cell_master.split(0);
    const VideoWorkload vw = api::build_video(cell, wl_rng);
    const ServeSpec spec{.links = cell.links,
                         .service_rate = cell.service_rate,
                         .buffer = cell.buffer,
                         .work_conserving = true,
                         .drop_dead_frames = true,
                         .workers = workers,
                         .window = cell.window};
    for (std::size_t r = 0; r < ranker_names.size(); ++r) {
      const api::RankerInfo& info = api::rankers().at(ranker_names[r]);
      const Rng rk_rng = cell_master.split(1000000000 + r);
      auto ranker = info.make(rk_rng);
      const SustainedStats ref =
          serve_sustained_reference(vw.schedule, vw.stream_of, *ranker, spec);
      ranker->reseed(rk_rng);
      const auto t0 = std::chrono::steady_clock::now();
      const SustainedStats st =
          serve_sustained(vw.schedule, vw.stream_of, *ranker, spec);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      OSP_REQUIRE_MSG(st == ref,
                      "sustained run diverged from the serial reference "
                      "(scenario '"
                          << cell.display_label() << "', ranker " << info.name
                          << ", workers " << workers << ")");
      session.emit(
          api::Row{}
              .add("scenario", cell.display_label())
              .add("ranker", info.name)
              .add("links", cell.links)
              .add("workers", workers)
              .add("service_rate", cell.service_rate)
              .add("buffer", cell.buffer)
              .add("packets", st.router.packets_arrived)
              .add("goodput", st.router.goodput())
              .add("window_goodput_min", st.window_goodput_min())
              .add("serve_p50", st.serve_latency.percentile(50))
              .add("serve_p99", st.serve_latency.percentile(99))
              .add("streams_starved", st.streams_starved())
              .add("packets_per_sec",
                   secs > 0
                       ? static_cast<double>(st.router.packets_arrived) / secs
                       : 0.0)
              .add("cross_check", "pass"));
    }
  }
  session.close_sinks();
  table.print(std::cout);
  if (json != nullptr)
    std::cerr << "wrote BENCH_" << args.get("json", "cli") << ".json\n";
  return 0;
}

int cmd_bench(const Args& args) {
  // Scenario columns: named registry entries and/or a config file, each
  // expanded through its sweep axes into one column per cell.
  std::vector<api::ScenarioSpec> specs;
  if (args.has("scenario") || !args.has("config"))
    for (const std::string& name :
         split_commas(args.get("scenario", "random")))
      specs.push_back(scenario_from(args, name));
  if (args.has("config")) {
    api::ScenarioSpec spec =
        api::ScenarioSpec::from_file(args.get("config", ""));
    specs.push_back(apply_overrides(spec, args));
  }
  OSP_REQUIRE_MSG(!specs.empty(), "bench needs --scenario names or --config");

  // A generator flag on a swept key would be silently clobbered by the
  // axis values during expansion; refuse instead of benching something
  // other than what the user asked for.
  for (const api::ScenarioSpec& spec : specs)
    for (const api::SweepAxis& axis : spec.sweep)
      for (const std::string& key : axis.keys)
        OSP_REQUIRE_MSG(!args.has(key),
                        "--" << key << " conflicts with scenario '"
                             << spec.name << "', which sweeps '" << key
                             << "'; change the axis (sweep." << key
                             << " = …) in a config file instead");

  const std::uint64_t seed = args.get_num("seed", 1);

  std::vector<api::ScenarioSpec> cells;
  int trials = -1;
  for (const api::ScenarioSpec& spec : specs) {
    trials = std::max(trials, spec.default_trials);
    for (api::ScenarioSpec& cell : api::expand(spec))
      cells.push_back(std::move(cell));
  }
  if (args.has("trials")) {
    const std::size_t requested = args.get_num("trials", 100);
    // Bound before narrowing to int so out-of-range values error instead
    // of silently truncating to a wrong trial count.
    OSP_REQUIRE_MSG(requested >= 1 && requested <= 1000000000,
                    "flag --trials must be in [1, 1e9], got " << requested);
    trials = static_cast<int>(requested);
  }
  OSP_REQUIRE_MSG(trials >= 1, "flag --trials must be at least 1");

  // --shard i/N slices the expanded (instance × policy) cell grid; --out
  // names the partial-result file the slice is written to.  Parse the
  // plan before any work so a malformed spec is a one-line error.
  const bool sharded = args.has("shard");
  api::ShardPlan plan;
  if (sharded)
    plan = api::ShardPlan::parse("flag --shard", args.get("shard", ""));
  OSP_REQUIRE_MSG(sharded || !args.has("out"),
                  "bench --out writes a shard's partial-result file and "
                  "needs --shard i/N next to it");

  api::Session session;
  if (args.has("sustained")) {
    // The serving runtime is its own experiment: --alg's packing grid and
    // --ranker's trial sweep answer different questions, and a sustained
    // run is one deterministic pass, so trial/shard plumbing is refused
    // rather than silently ignored.
    OSP_REQUIRE_MSG(!args.has("alg"),
                    "--sustained and --alg are mutually exclusive: "
                    "--sustained drives the serving runtime, --alg runs a "
                    "packing grid");
    OSP_REQUIRE_MSG(!sharded && !args.has("dry-run"),
                    "--shard/--dry-run slice the packing-policy grid; "
                    "--sustained runs are not shardable (one deterministic "
                    "run per cell)");
    OSP_REQUIRE_MSG(!args.has("trials"),
                    "--sustained is one long deterministic run per cell; "
                    "vary --seed for a different draw instead of --trials");
    return bench_sustained(args, session, cells, seed);
  }
  if (args.has("ranker")) {
    // A policy grid and a ranker sweep are different experiments; a
    // silently ignored --alg would read as "the policy ran too".
    OSP_REQUIRE_MSG(!args.has("alg"),
                    "--ranker and --alg are mutually exclusive: rankers "
                    "drive the buffered router, --alg runs a packing grid");
    OSP_REQUIRE_MSG(!sharded && !args.has("dry-run"),
                    "--shard/--dry-run slice the packing-policy grid; "
                    "--ranker sweeps are not shardable (run them whole)");
    return bench_rankers(args, session, cells, trials, seed);
  }

  // Policy rows: every registered policy unless --alg narrows the sweep.
  std::vector<std::string> alg_specs;
  if (args.has("alg")) {
    alg_specs = split_commas(args.get("alg", ""));
    OSP_REQUIRE_MSG(!alg_specs.empty(),
                    "--alg needs policy specs (or omit it to sweep every "
                    "registered policy)");
  } else {
    alg_specs = api::policies().names();
  }

  // A packing grid swept over a key build_instance ignores (buffer,
  // service-rate, capacity on non-video families, …) would print
  // identical columns whose labels claim a parameter varied.
  for (const api::ScenarioSpec& spec : specs)
    for (const api::SweepAxis& axis : spec.sweep)
      for (const std::string& key : axis.keys)
        if (!api::affects_instance(key, spec.family))
          std::cerr << "note: sweep key '" << key << "' of scenario '"
                    << spec.name
                    << "' does not affect the packing instance; its "
                       "columns differ only in label (use --ranker for "
                       "the router knobs)\n";

  // Resolve the policy specs once: canonical names feed the dry-run
  // listing, the grid fingerprint, and the grid columns alike, so alias
  // spellings of the same policy fingerprint identically.
  std::vector<const api::PolicyInfo*> policy_infos;
  for (const std::string& spec : alg_specs)
    policy_infos.push_back(&api::policies().at(spec));
  const std::size_t num_algs = policy_infos.size();
  const std::size_t total_cells = cells.size() * num_algs;

  if (args.has("dry-run")) {
    // The expanded cell list, one line per grid cell in canonical
    // row-major order, restricted to the shard's slice when --shard is
    // given; nothing is built or run.
    std::size_t begin = 0, end = total_cells;
    if (sharded) {
      const auto slice = plan.slice(total_cells);
      begin = slice.first;
      end = slice.second;
    }
    Table t({"cell", "shard", "instance", "policy"});
    for (std::size_t c = begin; c < end; ++c)
      t.row({fmt(c), fmt(plan.owner(c, total_cells)),
             cells[c / num_algs].display_label(),
             policy_infos[c % num_algs]->name});
    t.print(std::cout);
    std::cout << total_cells << " cells (" << cells.size() << " instances x "
              << num_algs << " policies), trials=" << trials
              << "; dry run, nothing executed\n";
    return 0;
  }

  std::vector<Instance> instances;
  std::vector<const Instance*> instance_ptrs;
  std::vector<std::string> labels;
  for (const api::ScenarioSpec& cell : cells) {
    Rng rng(seed);
    instances.push_back(api::build_instance(cell, rng));
    labels.push_back(cell.display_label());
  }
  for (const Instance& inst : instances) instance_ptrs.push_back(&inst);

  engine::GridSpec grid;
  grid.instances = instance_ptrs;
  for (const api::PolicyInfo* info : policy_infos)
    grid.algorithms.push_back(api::grid_column(*info));
  grid.trials = trials;
  grid.master_seed = seed;

  api::TableSink table;
  session.attach(table);
  std::unique_ptr<api::JsonSink> json;
  std::unique_ptr<api::ShardSink> shard;
  if (sharded) {
    // A sharded run writes a partial-result file instead of BENCH JSON;
    // --json only records the artifact name in the manifest, so `merge`
    // can produce the same BENCH_<name>.json the unsharded run would.
    const std::string out = args.get("out", "");
    OSP_REQUIRE_MSG(!out.empty(),
                    "--shard needs --out FILE naming the partial-result "
                    "file this slice is written to");
    const auto slice = plan.slice(total_cells);
    grid.cell_begin = slice.first;
    grid.cell_end = slice.second;
    std::vector<std::string> policy_names;
    for (const api::PolicyInfo* info : policy_infos)
      policy_names.push_back(info->name);
    api::ShardManifest manifest;
    manifest.bench = args.get("json", "cli");
    manifest.fingerprint =
        api::grid_fingerprint(cells, policy_names, trials, seed);
    manifest.shard_index = plan.index;
    manifest.shard_count = plan.count;
    manifest.cell_begin = slice.first;
    manifest.cell_end = slice.second;
    manifest.total_cells = total_cells;
    manifest.threads = session.threads();
    shard = std::make_unique<api::ShardSink>(out, manifest);
    session.attach(*shard);
  } else {
    json = open_json_sink(args, session);
  }

  session.run_grid(grid, labels);
  session.close_sinks();
  table.print(std::cout);
  if (shard != nullptr)
    std::cerr << "wrote shard " << plan.index << "/" << plan.count
              << " (cells " << grid.cell_begin << ".." << grid.cell_end
              << " of " << total_cells << ") to " << args.get("out", "")
              << "\n";
  if (json != nullptr)
    std::cerr << "wrote BENCH_" << args.get("json", "cli") << ".json\n";
  return 0;
}

// ---------------------------------------------------------------------
// merge

/// `merge PART... (--json NAME | --out FILE)`: validates that the
/// partial-result files tile one grid exactly and replays their rows, in
/// canonical cell order, through the same JsonSink `bench --json` uses —
/// so the merged artifact is bit-identical to an unsharded run's.
int cmd_merge(const Args& args) {
  OSP_REQUIRE_MSG(!args.positionals.empty(),
                  "merge needs partial-result files: osp_cli merge PART... "
                  "(--json NAME | --out FILE)");
  OSP_REQUIRE_MSG(args.has("json") != args.has("out"),
                  "merge needs exactly one of --json NAME (write "
                  "BENCH_NAME.json) or --out FILE (write an explicit path)");

  std::vector<api::ShardPartial> partials;
  for (const std::string& path : args.positionals) {
    std::ifstream in(path);
    OSP_REQUIRE_MSG(in.good(),
                    "cannot open partial-result file '" << path << "'");
    partials.push_back(api::parse_shard_partial(in, path));
  }
  api::MergedShards merged = api::merge_shards(std::move(partials));

  if (args.has("json")) {
    const std::string name = args.get("json", "");
    OSP_REQUIRE_MSG(name == merged.bench,
                    "--json '" << name << "' does not match the bench name '"
                               << merged.bench
                               << "' recorded in the shard manifests");
    const std::string path = "BENCH_" + name + ".json";
    OSP_REQUIRE_MSG(!std::ifstream(path).good(),
                    path << " already exists; refusing to overwrite "
                            "— pick another name or remove it first");
    api::JsonSink sink(name, merged.threads);
    for (const api::Row& row : merged.rows) sink.write(row);
    sink.close();
    std::cerr << "wrote " << path << " (" << merged.rows.size()
              << " rows from " << args.positionals.size() << " partials)\n";
  } else {
    const std::string path = args.get("out", "");
    std::ofstream os(path);
    OSP_REQUIRE_MSG(os.good(), "cannot open '" << path << "' for writing");
    api::JsonSink sink(os, merged.bench, merged.threads);
    for (const api::Row& row : merged.rows) sink.write(row);
    sink.close();
    os << '\n';  // the file form's trailing newline, for byte-parity
    std::cerr << "wrote " << path << " (" << merged.rows.size()
              << " rows from " << args.positionals.size() << " partials)\n";
  }
  return 0;
}

// ---------------------------------------------------------------------
// version

int cmd_version(const Args&) {
  // Perf artifacts from heterogeneous runners are only comparable when
  // the build flavor, the CPU's capabilities, and the ISA the dispatcher
  // actually picked are all on record; this prints the three in a stable
  // `key: value` layout scripts can grep (check.sh parses isa.available).
  std::cout << "osp_cli version\n";
#if defined(__VERSION__)
  std::cout << "build.compiler: " << __VERSION__ << "\n";
#endif
  std::cout << "build.std: " << __cplusplus << "\n";
#if defined(__x86_64__)
  std::cout << "build.arch: x86_64\n";
#elif defined(__aarch64__)
  std::cout << "build.arch: aarch64\n";
#else
  std::cout << "build.arch: other\n";
#endif
#if defined(NDEBUG)
  std::cout << "build.assertions: off\n";
#else
  std::cout << "build.assertions: on\n";
#endif
#if defined(__SANITIZE_ADDRESS__)
  std::cout << "build.sanitizers: address\n";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  std::cout << "build.sanitizers: address\n";
#else
  std::cout << "build.sanitizers: none\n";
#endif
#else
  std::cout << "build.sanitizers: none\n";
#endif

  const simd::CpuFeatures& f = simd::detect_cpu_features();
  std::cout << "cpu.sse2: " << (f.sse2 ? "yes" : "no") << "\n"
            << "cpu.avx2: " << (f.avx2 ? "yes" : "no") << "\n"
            << "cpu.neon: " << (f.neon ? "yes" : "no") << "\n";

  std::string available;
  for (simd::Isa isa : simd::available_isas()) {
    if (!available.empty()) available += " ";
    available += simd::isa_name(isa);
  }
  std::cout << "isa.available: " << available << "\n"
            << "isa.active: " << simd::active_isa_name() << "\n"
            << "isa.selection: " << simd::isa_selection_note() << "\n";
  return 0;
}

int usage() {
  std::cerr <<
      R"(osp_cli — online set packing toolbox
  osp_cli list  [--policies] [--scenarios] [--rankers] [--markdown]
  osp_cli gen   <scenario> [--out FILE] [--seed S] [--m M] [--n N] [--k K]
                [--sigma SIGMA] [--ell ELL] [--t T] [--weights W] ...
  osp_cli stats <file|->
  osp_cli run   [file|-] [--alg SPEC] [--seed S] [--trials T]
  osp_cli solve <file|->
  osp_cli bench [--scenario NAMES] [--config FILE] [--alg SPECS]
                [--ranker NAMES] [--trials T] [--seed S] [--json NAME]
                [--sustained [--workers W]]
                [--dry-run] [--shard i/N --out PART]
  osp_cli merge PART... (--json NAME | --out FILE)
  osp_cli version

stats/run/solve read the instance from a file, from '-', or from a pipe
on stdin (so `osp_cli gen … | osp_cli run …` works); NAMES/SPECS are
comma-separated.  Scenarios with sweep axes expand into one bench column
per cell.  `bench --config FILE` loads a key=value scenario file
(scenario = <base>, field overrides, sweep.<key> = values — see
docs/EXPERIMENTS.md); `bench --ranker` sweeps buffered-router rankers
over a video scenario; `bench --sustained` runs the multi-link serving
runtime (sustained/* scenarios, --workers picks the worker count, every
run is cross-checked against the serial reference); `list --markdown`
emits docs/CATALOG.md.
`bench --dry-run` prints the expanded cell grid without running;
`bench --shard i/N --out PART` runs shard i's slice of the cells into a
partial-result file, and `merge` fuses partials into the bit-identical
BENCH artifact (see docs/EXPERIMENTS.md, "Sharding a sweep").

)" << "policies:\n"
            << osp::api::policies().render_catalog() << "\nscenarios:\n"
            << osp::api::scenarios().render_catalog() << "\nrankers:\n"
            << osp::api::rankers().render_catalog()
            << "\nweights: unit uniform zipf exp\n";
  return 2;
}

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    Args args = parse(argc, argv);
    // Only merge takes several positionals; everywhere else a second one
    // is a typo (e.g. a flag value that lost its --flag).
    if (args.command != "merge")
      OSP_REQUIRE_MSG(args.positionals.size() <= 1,
                      "unexpected extra argument " << args.positionals[1]);
    if (args.command == "list") return cmd_list(args);
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "solve") return cmd_solve(args);
    if (args.command == "bench") return cmd_bench(args);
    if (args.command == "merge") return cmd_merge(args);
    if (args.command == "version") return cmd_version(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace
}  // namespace osp::cli

int main(int argc, char** argv) { return osp::cli::main(argc, argv); }
