// osp_cli — command-line driver for the library, built entirely on the
// experiment API layer (src/api): policies and workloads resolve through
// the registries, runs go through a Session, and results stream through
// ResultSinks.
//
//   osp_cli list  [--policies] [--scenarios]
//   osp_cli gen   <scenario> [--out FILE] [--seed S] [--m M] [--n N] ...
//   osp_cli stats <file>
//   osp_cli run   [file|-] [--alg SPEC] [--seed S] [--trials T]
//   osp_cli solve <file>
//   osp_cli bench [--scenario NAMES] [--alg SPECS] [--trials T] [--seed S]
//                 [--json NAME]
//
// `list` enumerates everything the registries know; adding a policy or a
// scenario in its home file makes it appear here (and in `bench`, and in
// the test sweeps) with no CLI change.
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algos/offline.hpp"
#include "api/policy_registry.hpp"
#include "api/result_sink.hpp"
#include "api/scenario.hpp"
#include "api/session.hpp"
#include "core/bounds.hpp"
#include "core/game.hpp"
#include "core/io.hpp"
#include "engine/trial.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/require.hpp"

namespace osp::cli {
namespace {

struct Args {
  std::string command;
  std::string positional;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  /// Strict numeric flag parse; fails through RequireError naming the
  /// flag (the seed CLI aborted with an uncaught std::invalid_argument).
  std::size_t get_num(const std::string& key, std::size_t fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    return api::parse_size("flag --" + key, it->second);
  }
};

/// Flags that are pure switches (no value follows them).
bool is_boolean_flag(const std::string& name) {
  return name == "policies" || name == "scenarios";
}

Args parse(int argc, char** argv) {
  Args args;
  OSP_REQUIRE_MSG(argc >= 2, "usage: osp_cli <command> ... (see --help)");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string word = argv[i];
    if (word.rfind("--", 0) == 0) {
      if (is_boolean_flag(word.substr(2))) {
        args.options[word.substr(2)] = "";
        continue;
      }
      OSP_REQUIRE_MSG(i + 1 < argc, "missing value for " << word);
      args.options[word.substr(2)] = argv[++i];
    } else {
      OSP_REQUIRE_MSG(args.positional.empty(),
                      "unexpected extra argument " << word);
      args.positional = word;
    }
  }
  return args;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Copies the named scenario out of the registry and applies every
/// generator flag present on the command line.
api::ScenarioSpec scenario_from(const Args& args, const std::string& name) {
  api::ScenarioSpec spec = api::scenarios().at(name);
  for (const auto& [key, value] : args.options) {
    if (key == "out" || key == "seed" || key == "trials" || key == "alg" ||
        key == "scenario" || key == "json")
      continue;  // run plumbing, not generator parameters
    spec.set(key, value);
  }
  return spec;
}

Instance load_from(const std::string& where) {
  if (where.empty() || where == "-") return read_instance(std::cin);
  return load_instance(where);
}

int cmd_list(const Args& args) {
  // No flag: both sections.  Either flag selects its section; giving
  // both is the same as giving neither.
  const bool show_policies = args.has("policies") || !args.has("scenarios");
  const bool show_scenarios = args.has("scenarios") || !args.has("policies");
  if (show_policies) {
    std::cout << "policies (" << api::policies().entries().size() << "):\n"
              << api::policies().render_catalog();
  }
  if (show_scenarios) {
    if (show_policies) std::cout << '\n';
    std::cout << "scenarios (" << api::scenarios().entries().size()
              << "):\n"
              << api::scenarios().render_catalog();
  }
  return 0;
}

int cmd_gen(const Args& args) {
  OSP_REQUIRE_MSG(!args.positional.empty(),
                  "gen needs a scenario name; registered scenarios:\n"
                      << api::scenarios().render_catalog());
  api::ScenarioSpec spec = scenario_from(args, args.positional);
  Rng rng(args.get_num("seed", 1));
  Instance inst = api::build_instance(spec, rng);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    write_instance(std::cout, inst);
  } else {
    save_instance(out, inst);
    std::cerr << "wrote " << inst.describe() << " to " << out << "\n";
  }
  return 0;
}

int cmd_stats(const Args& args) {
  OSP_REQUIRE_MSG(!args.positional.empty(),
                  "stats needs a file (or '-' for stdin)");
  Instance inst = load_from(args.positional);
  InstanceStats st = inst.stats();
  Table t({"quantity", "value"});
  t.row({"sets (m)", fmt(st.num_sets)});
  t.row({"elements (n)", fmt(st.num_elements)});
  t.row({"total weight", fmt(st.total_weight, 3)});
  t.row({"kmax", fmt(st.k_max)});
  t.row({"k avg", fmt(st.k_avg, 3)});
  t.row({"sigma max", fmt(st.sigma_max)});
  t.row({"sigma avg", fmt(st.sigma_avg, 3)});
  t.row({"nu avg (adjusted)", fmt(st.nu_avg, 3)});
  t.row({"uniform size", st.uniform_size ? "yes" : "no"});
  t.row({"uniform load", st.uniform_load ? "yes" : "no"});
  t.row({"unit capacity", st.unit_capacity ? "yes" : "no"});
  t.row({"Theorem 1 bound", fmt(theorem1_bound(st), 3)});
  t.row({"Corollary 6 bound", fmt(corollary6_bound(st), 3)});
  if (!st.unit_capacity) t.row({"Theorem 4 bound", fmt(theorem4_bound(st), 3)});
  t.print(std::cout);
  return 0;
}

int cmd_run(const Args& args) {
  const std::string name = args.get("alg", "randpr");
  const std::size_t trials = args.get_num("trials", 1);
  Rng master(args.get_num("seed", 1));

  // Resolve before touching the input so an unknown spec fails with the
  // registry catalog in the message, whatever state the instance is in.
  const api::PolicyInfo& policy = api::policies().at(name);
  // A bare `run` on a terminal would block forever waiting for an
  // instance; only read stdin implicitly when something is piped in.
  OSP_REQUIRE_MSG(!args.positional.empty() || !isatty(fileno(stdin)),
                  "run needs a file (or pipe an instance in / pass '-')");
  Instance inst = load_from(args.positional);

  RunningStat benefit;
  std::size_t completed = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    auto alg = policy.make(master.split(t));
    Outcome out = play(inst, *alg);
    benefit.add(out.benefit);
    completed = out.completed.size();
  }
  if (trials == 1) {
    std::cout << policy.name << ": completed " << completed
              << " sets, benefit " << benefit.mean() << "\n";
  } else {
    std::cout << policy.name << " over " << trials
              << " trials: E[benefit] = " << benefit.mean() << " +/- "
              << benefit.ci95_halfwidth() << "\n";
  }
  return 0;
}

int cmd_solve(const Args& args) {
  OSP_REQUIRE_MSG(!args.positional.empty(),
                  "solve needs a file (or '-' for stdin)");
  Instance inst = load_from(args.positional);
  OfflineResult greedy = greedy_offline(inst);
  OfflineResult opt = exact_optimum(inst);
  double lp = inst.num_sets() <= 120 ? lp_upper_bound(inst) : -1;
  Table t({"solver", "value", "note"});
  t.row({"greedy offline", fmt(greedy.value, 3), "k-approximation"});
  t.row({"branch & bound", fmt(opt.value, 3),
         opt.exact ? "exact" : "node limit hit (lower bound)"});
  if (lp >= 0) t.row({"LP relaxation", fmt(lp, 3), "upper bound"});
  t.print(std::cout);
  return 0;
}

int cmd_bench(const Args& args) {
  // Scenario columns.
  const std::vector<std::string> scenario_names =
      split_commas(args.get("scenario", "random"));
  OSP_REQUIRE_MSG(!scenario_names.empty(), "bench needs --scenario names");

  // Policy rows: every registered policy unless --alg narrows the sweep.
  std::vector<std::string> alg_specs;
  if (args.has("alg")) {
    alg_specs = split_commas(args.get("alg", ""));
    OSP_REQUIRE_MSG(!alg_specs.empty(),
                    "--alg needs policy specs (or omit it to sweep every "
                    "registered policy)");
  } else {
    alg_specs = api::policies().names();
  }

  const std::uint64_t seed = args.get_num("seed", 1);
  api::Session session;

  std::vector<api::ScenarioSpec> specs;
  std::vector<Instance> instances;
  std::vector<const Instance*> instance_ptrs;
  std::vector<std::string> labels;
  int trials = -1;
  for (const std::string& name : scenario_names) {
    specs.push_back(scenario_from(args, name));
    Rng rng(seed);
    instances.push_back(api::build_instance(specs.back(), rng));
    labels.push_back(specs.back().name);
    trials = std::max(trials, specs.back().default_trials);
  }
  for (const Instance& inst : instances) instance_ptrs.push_back(&inst);
  if (args.has("trials")) {
    const std::size_t requested = args.get_num("trials", 100);
    // Bound before narrowing to int so out-of-range values error instead
    // of silently truncating to a wrong trial count.
    OSP_REQUIRE_MSG(requested >= 1 && requested <= 1000000000,
                    "flag --trials must be in [1, 1e9], got " << requested);
    trials = static_cast<int>(requested);
  }
  OSP_REQUIRE_MSG(trials >= 1, "flag --trials must be at least 1");

  engine::GridSpec grid;
  grid.instances = instance_ptrs;
  for (const std::string& spec : alg_specs)
    grid.algorithms.push_back(api::grid_column(api::policies().at(spec)));
  grid.trials = trials;
  grid.master_seed = seed;

  api::TableSink table;
  session.attach(table);
  std::unique_ptr<api::JsonSink> json;
  if (args.has("json")) {
    const std::string json_name = args.get("json", "cli");
    OSP_REQUIRE_MSG(!json_name.empty(),
                    "--json needs a non-empty artifact name");
    // Never overwrite an existing artifact: the bench binaries' committed
    // BENCH_*.json carry schema-gated key sets a CLI grid would break,
    // and this stays correct for every artifact any future bench emits.
    const std::string json_path = "BENCH_" + json_name + ".json";
    OSP_REQUIRE_MSG(!std::ifstream(json_path).good(),
                    json_path << " already exists; refusing to overwrite "
                                 "— pick another name or remove it first");
    json = std::make_unique<api::JsonSink>(json_name, session.threads());
    session.attach(*json);
  }

  session.run_grid(grid, labels);
  session.close_sinks();
  table.print(std::cout);
  if (json != nullptr)
    std::cerr << "wrote BENCH_" << args.get("json", "cli") << ".json\n";
  return 0;
}

int usage() {
  std::cerr <<
      R"(osp_cli — online set packing toolbox
  osp_cli list  [--policies] [--scenarios]
  osp_cli gen   <scenario> [--out FILE] [--seed S] [--m M] [--n N] [--k K]
                [--sigma SIGMA] [--ell ELL] [--t T] [--weights W] ...
  osp_cli stats <file|->
  osp_cli run   [file|-] [--alg SPEC] [--seed S] [--trials T]
  osp_cli solve <file|->
  osp_cli bench [--scenario NAMES] [--alg SPECS] [--trials T] [--seed S]
                [--json NAME]
('-' or a pipe reads the instance from stdin; NAMES/SPECS are
comma-separated.)

)" << "policies:\n"
            << osp::api::policies().render_catalog() << "\nscenarios:\n"
            << osp::api::scenarios().render_catalog()
            << "\nweights: unit uniform zipf exp\n";
  return 2;
}

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    Args args = parse(argc, argv);
    if (args.command == "list") return cmd_list(args);
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "solve") return cmd_solve(args);
    if (args.command == "bench") return cmd_bench(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace
}  // namespace osp::cli

int main(int argc, char** argv) { return osp::cli::main(argc, argv); }
