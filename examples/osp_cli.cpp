// osp_cli — command-line driver for the library.
//
//   osp_cli gen <family> [--out FILE] [--seed S] [--m M] [--n N] [--k K]
//                        [--sigma SIGMA] [--ell ELL] [--t T] [--weights W]
//   osp_cli stats <file>
//   osp_cli run <file> [--alg NAME] [--seed S] [--trials T]
//   osp_cli solve <file>
//
// Families: random, regular, fixedload, video, multihop, weaklb, lemma9.
// Algorithms: randpr, randpr-filt, hashpr, greedy-first, greedy-maxw,
//             greedy-progress, greedy-srpt, greedy-density, round-robin,
//             uniform-random.
// Weights: unit, uniform, zipf, exp.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "algos/baselines.hpp"
#include "algos/offline.hpp"
#include "core/bounds.hpp"
#include "core/game.hpp"
#include "core/io.hpp"
#include "core/rand_pr.hpp"
#include "design/lower_bounds.hpp"
#include "gen/multihop.hpp"
#include "gen/random_instances.hpp"
#include "gen/video.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/require.hpp"

namespace osp::cli {
namespace {

struct Args {
  std::string command;
  std::string positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  std::size_t get_num(const std::string& key, std::size_t fallback) const {
    auto it = options.find(key);
    return it == options.end()
               ? fallback
               : static_cast<std::size_t>(std::stoull(it->second));
  }
};

Args parse(int argc, char** argv) {
  Args args;
  OSP_REQUIRE_MSG(argc >= 2, "usage: osp_cli <command> ... (see --help)");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string word = argv[i];
    if (word.rfind("--", 0) == 0) {
      OSP_REQUIRE_MSG(i + 1 < argc, "missing value for " << word);
      args.options[word.substr(2)] = argv[++i];
    } else {
      OSP_REQUIRE_MSG(args.positional.empty(),
                      "unexpected extra argument " << word);
      args.positional = word;
    }
  }
  return args;
}

WeightModel weights_from(const std::string& name) {
  if (name == "unit") return WeightModel::unit();
  if (name == "uniform") return WeightModel::uniform(1, 10);
  if (name == "zipf") return WeightModel::zipf(1.2);
  if (name == "exp") return WeightModel::exponential(1.0);
  OSP_REQUIRE_MSG(false, "unknown weight model '" << name << "'");
  return {};
}

Instance generate(const Args& args) {
  Rng rng(args.get_num("seed", 1));
  WeightModel wm = weights_from(args.get("weights", "unit"));
  const std::string family = args.positional;
  const std::size_t m = args.get_num("m", 24);
  const std::size_t n = args.get_num("n", 30);
  const std::size_t k = args.get_num("k", 3);
  const std::size_t sigma = args.get_num("sigma", 4);

  if (family == "random") return random_instance(m, n, k, wm, rng);
  if (family == "regular") return regular_instance(m, k, sigma, wm, rng);
  if (family == "fixedload")
    return fixed_load_instance(m, n, sigma, wm, rng);
  if (family == "video") {
    VideoParams params;
    params.num_streams = args.get_num("streams", 8);
    params.frames_per_stream = args.get_num("frames", 24);
    return make_video_workload(params, rng).schedule.to_instance(
        static_cast<Capacity>(args.get_num("capacity", 1)));
  }
  if (family == "multihop") {
    MultiHopParams params;
    params.num_packets = args.get_num("packets", 80);
    params.num_switches = args.get_num("switches", 6);
    return make_multihop_workload(params, rng).instance;
  }
  if (family == "weaklb")
    return build_weak_lb_instance(args.get_num("t", 8), rng).instance;
  if (family == "lemma9")
    return build_lemma9_instance(args.get_num("ell", 3), rng).instance;
  OSP_REQUIRE_MSG(false, "unknown family '" << family << "'");
  return InstanceBuilder{}.build();
}

std::unique_ptr<OnlineAlgorithm> make_algorithm(const std::string& name,
                                                Rng seed) {
  if (name == "randpr") return std::make_unique<RandPr>(seed);
  if (name == "randpr-filt")
    return std::make_unique<RandPr>(seed,
                                    RandPrOptions{.filter_dead = true});
  if (name == "hashpr") {
    Rng r = seed;
    return HashedRandPr::with_polynomial(8, r);
  }
  if (name == "uniform-random")
    return std::make_unique<UniformRandomChoice>(seed);
  for (auto& alg : make_deterministic_baselines())
    if (alg->name() == name) return std::move(alg);
  OSP_REQUIRE_MSG(false, "unknown algorithm '" << name << "'");
  return nullptr;
}

int cmd_gen(const Args& args) {
  Instance inst = generate(args);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    write_instance(std::cout, inst);
  } else {
    save_instance(out, inst);
    std::cerr << "wrote " << inst.describe() << " to " << out << "\n";
  }
  return 0;
}

int cmd_stats(const Args& args) {
  OSP_REQUIRE_MSG(!args.positional.empty(), "stats needs a file");
  Instance inst = load_instance(args.positional);
  InstanceStats st = inst.stats();
  Table t({"quantity", "value"});
  t.row({"sets (m)", fmt(st.num_sets)});
  t.row({"elements (n)", fmt(st.num_elements)});
  t.row({"total weight", fmt(st.total_weight, 3)});
  t.row({"kmax", fmt(st.k_max)});
  t.row({"k avg", fmt(st.k_avg, 3)});
  t.row({"sigma max", fmt(st.sigma_max)});
  t.row({"sigma avg", fmt(st.sigma_avg, 3)});
  t.row({"nu avg (adjusted)", fmt(st.nu_avg, 3)});
  t.row({"uniform size", st.uniform_size ? "yes" : "no"});
  t.row({"uniform load", st.uniform_load ? "yes" : "no"});
  t.row({"unit capacity", st.unit_capacity ? "yes" : "no"});
  t.row({"Theorem 1 bound", fmt(theorem1_bound(st), 3)});
  t.row({"Corollary 6 bound", fmt(corollary6_bound(st), 3)});
  if (!st.unit_capacity) t.row({"Theorem 4 bound", fmt(theorem4_bound(st), 3)});
  t.print(std::cout);
  return 0;
}

int cmd_run(const Args& args) {
  OSP_REQUIRE_MSG(!args.positional.empty(), "run needs a file");
  Instance inst = load_instance(args.positional);
  const std::string name = args.get("alg", "randpr");
  const std::size_t trials = args.get_num("trials", 1);
  Rng master(args.get_num("seed", 1));

  RunningStat benefit;
  std::size_t completed = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    auto alg = make_algorithm(name, master.split(t));
    Outcome out = play(inst, *alg);
    benefit.add(out.benefit);
    completed = out.completed.size();
  }
  if (trials == 1) {
    std::cout << name << ": completed " << completed << " sets, benefit "
              << benefit.mean() << "\n";
  } else {
    std::cout << name << " over " << trials
              << " trials: E[benefit] = " << benefit.mean() << " +/- "
              << benefit.ci95_halfwidth() << "\n";
  }
  return 0;
}

int cmd_solve(const Args& args) {
  OSP_REQUIRE_MSG(!args.positional.empty(), "solve needs a file");
  Instance inst = load_instance(args.positional);
  OfflineResult greedy = greedy_offline(inst);
  OfflineResult opt = exact_optimum(inst);
  double lp = inst.num_sets() <= 120 ? lp_upper_bound(inst) : -1;
  Table t({"solver", "value", "note"});
  t.row({"greedy offline", fmt(greedy.value, 3), "k-approximation"});
  t.row({"branch & bound", fmt(opt.value, 3),
         opt.exact ? "exact" : "node limit hit (lower bound)"});
  if (lp >= 0) t.row({"LP relaxation", fmt(lp, 3), "upper bound"});
  t.print(std::cout);
  return 0;
}

int usage() {
  std::cerr <<
      R"(osp_cli — online set packing toolbox
  osp_cli gen <family> [--out FILE] [--seed S] [--m M] [--n N] [--k K]
                       [--sigma SIGMA] [--ell ELL] [--t T] [--weights W]
  osp_cli stats <file>
  osp_cli run <file> [--alg NAME] [--seed S] [--trials T]
  osp_cli solve <file>
families: random regular fixedload video multihop weaklb lemma9
algs: randpr randpr-filt hashpr greedy-first greedy-maxw greedy-progress
      greedy-srpt greedy-density round-robin uniform-random
weights: unit uniform zipf exp
)";
  return 2;
}

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    Args args = parse(argc, argv);
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "solve") return cmd_solve(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace
}  // namespace osp::cli

int main(int argc, char** argv) { return osp::cli::main(argc, argv); }
