// Video streaming through a bottleneck router — the paper's motivating
// scenario end to end.
//
//   $ ./video_streaming [num_streams] [buffer]
//
// Generates a GOP-structured multi-stream video workload, pushes it
// through the router simulator under several drop policies, and reports
// how much frame value each policy delivers.  With a buffer argument > 0
// it also runs the buffered-router extension (the paper's open problem 2).
#include <cstdlib>
#include <iostream>

#include "algos/baselines.hpp"
#include "core/rand_pr.hpp"
#include "gen/video.hpp"
#include "net/router_sim.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace osp;
  const std::size_t streams =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;
  const std::size_t buffer =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;

  VideoParams params;
  params.num_streams = streams;
  params.frames_per_stream = 30;
  Rng rng(2024);
  VideoWorkload vw = make_video_workload(params, rng);

  std::cout << "Workload: " << vw.schedule.frames.size() << " frames, "
            << vw.schedule.total_packets() << " packets over "
            << vw.schedule.horizon << " slots; max burst "
            << vw.schedule.max_burst() << " packets/slot\n\n";

  std::cout << "-- unbuffered router (the paper's model) --\n";
  Table table({"policy", "frames delivered", "value delivered", "goodput"});
  auto report = [&](OnlineAlgorithm& alg) {
    RouterStats st = simulate_router(vw.schedule, alg, 1);
    table.row({alg.name(), fmt(st.frames_delivered),
               fmt(st.value_delivered, 1), fmt(st.goodput(), 3)});
  };
  RandPr randpr{Rng(1)};
  report(randpr);
  GreedyFirst drop_tail;   // serves the first-listed frame: drop-tail-ish
  report(drop_tail);
  GreedyMaxWeight by_weight;
  report(by_weight);
  GreedyMostProgress progress;
  report(progress);
  UniformRandomChoice random_drop{Rng(2)};
  report(random_drop);
  table.print(std::cout);

  std::cout << "\n-- buffered router, buffer = " << buffer
            << " packets (open problem 2) --\n";
  Table btable({"ranking", "frames delivered", "goodput"});
  BufferedRouterParams bp{.service_rate = 1,
                          .buffer_size = buffer,
                          .drop_dead_frames = true};
  RandPrRanker rank_randpr{Rng(3)};
  RouterStats a = simulate_buffered_router(vw.schedule, rank_randpr, bp);
  btable.row({rank_randpr.name(), fmt(a.frames_delivered),
              fmt(a.goodput(), 3)});
  WeightRanker rank_weight;
  RouterStats b = simulate_buffered_router(vw.schedule, rank_weight, bp);
  btable.row({rank_weight.name(), fmt(b.frames_delivered),
              fmt(b.goodput(), 3)});
  FifoRanker rank_fifo;
  RouterStats c = simulate_buffered_router(vw.schedule, rank_fifo, bp);
  btable.row({rank_fifo.name(), fmt(c.frames_delivered),
              fmt(c.goodput(), 3)});
  btable.print(std::cout);

  std::cout << "\nTry: ./video_streaming 16 0   (heavier congestion, no "
               "buffer)\n";
  return 0;
}
