// Quickstart: build an online set packing instance, run randPr, and
// compare against the exact offline optimum and the theoretical bound.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~60 lines:
//   InstanceBuilder -> Instance -> RandPr -> play() -> exact_optimum().
#include <iostream>

#include "algos/offline.hpp"
#include "core/bounds.hpp"
#include "core/game.hpp"
#include "core/rand_pr.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace osp;

  // A tiny video-style scenario: three frames, elements are time slots.
  //   Frame A (weight 3) has packets in slots 0 and 1.
  //   Frame B (weight 1) has packets in slots 0 and 2.
  //   Frame C (weight 2) has packets in slots 1 and 2.
  // Each slot can serve one packet, so at most one frame survives each
  // pairwise collision; any single frame can be completed, never two.
  InstanceBuilder builder;
  SetId frame_a = builder.add_set(3.0);
  SetId frame_b = builder.add_set(1.0);
  SetId frame_c = builder.add_set(2.0);
  builder.add_element({frame_a, frame_b});  // slot 0
  builder.add_element({frame_a, frame_c});  // slot 1
  builder.add_element({frame_b, frame_c});  // slot 2
  Instance inst = builder.build();

  std::cout << "Instance: " << inst.describe() << "\n\n";

  // One online run: priorities are drawn once per frame, every slot goes
  // to the present frame with the highest priority.
  RandPr alg{Rng(/*seed=*/7)};
  Outcome outcome = play(inst, alg);
  std::cout << "Single randPr run completed " << outcome.completed.size()
            << " frame(s), benefit " << outcome.benefit << "\n";

  // Expected benefit over many runs.
  RunningStat benefit;
  Rng master(42);
  for (int trial = 0; trial < 20000; ++trial) {
    RandPr fresh{master.split(trial)};
    benefit.add(play(inst, fresh).benefit);
  }

  // The exact offline optimum (here: frame A alone, value 3).
  OfflineResult opt = exact_optimum(inst);

  InstanceStats st = inst.stats();
  std::cout << "E[benefit]  = " << benefit.mean() << " +/- "
            << benefit.ci95_halfwidth() << "\n"
            << "opt         = " << opt.value << "\n"
            << "measured competitive ratio = " << opt.value / benefit.mean()
            << "\n"
            << "Theorem 1 bound            = " << theorem1_bound(st) << "\n"
            << "Corollary 6 bound          = " << corollary6_bound(st)
            << "  (kmax*sqrt(sigma_max))\n";

  // Lemma 1 sanity: frame A completes with probability
  // w(A)/w(N[A]) = 3 / (3+1+2) = 1/2.
  Rng check(99);
  int wins = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    RandPr fresh{check.split(t)};
    if (play(inst, fresh).completed_mask[frame_a]) ++wins;
  }
  std::cout << "\nLemma 1 check: Pr[frame A completes] = "
            << static_cast<double>(wins) / trials << "  (predicted 0.5)\n";
  return 0;
}
