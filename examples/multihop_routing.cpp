// Multi-hop packet scheduling — the paper's second scenario, and a live
// demonstration of the DISTRIBUTED implementation of randPr (Section 3.1):
// every switch hashes the packet id with the same shared hash function, so
// all switches agree on packet priorities without exchanging a single
// message.
//
//   $ ./multihop_routing [num_packets]
#include <cstdlib>
#include <iostream>

#include "algos/baselines.hpp"
#include "core/rand_pr.hpp"
#include "gen/multihop.hpp"
#include "net/pipeline.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace osp;
  const std::size_t packets =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 150;

  MultiHopParams params;
  params.num_switches = 8;
  params.num_packets = packets;
  params.horizon = 18;
  params.min_route = 2;
  params.max_route = 4;
  Rng rng(7);
  MultiHopWorkload w = make_multihop_workload(params, rng);

  std::cout << "Workload: " << packets << " packets over "
            << params.num_switches
            << " switches; contended link-slots: "
            << w.instance.num_elements() << ", max contention "
            << w.instance.stats().sigma_max << "\n\n";

  Table table({"per-switch policy", "packets delivered", "rate"});

  // Distributed randPr: ONE hash function shared by all switches.
  Rng hash_rng(11);
  auto shared_hash = std::make_shared<PolynomialHash>(8, hash_rng);
  PipelineStats shared = simulate_pipeline(
      w, params.num_switches, [&](std::size_t) {
        return std::make_unique<HashedRandPr>(
            [shared_hash](std::uint64_t id) { return shared_hash->unit(id); },
            "hashPr(shared)");
      });
  table.row({"randPr, shared hash", fmt(shared.packets_delivered),
             fmt(shared.delivery_rate(), 3)});

  // Naive randomized: each switch draws its own priorities.
  Rng indep_rng(13);
  PipelineStats indep = simulate_pipeline(
      w, params.num_switches, [&](std::size_t s) {
        return std::make_unique<RandPr>(indep_rng.split(s));
      });
  table.row({"randPr, independent per switch",
             fmt(indep.packets_delivered), fmt(indep.delivery_rate(), 3)});

  // Deterministic control.
  PipelineStats greedy = simulate_pipeline(
      w, params.num_switches,
      [](std::size_t) { return std::make_unique<GreedyFirst>(); });
  table.row({"greedy-first", fmt(greedy.packets_delivered),
             fmt(greedy.delivery_rate(), 3)});

  table.print(std::cout);
  std::cout
      << "\nThe shared-hash row should win: consistent priorities mean a "
         "packet that wins its first link keeps winning, so upstream "
         "service is never wasted on packets that die downstream.\n";
  return 0;
}
