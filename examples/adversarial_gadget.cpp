// The lower-bound constructions, run live:
//
//  1. Theorem 3's adaptive adversary dismantles a deterministic policy of
//     your choice (watch it finish with exactly one completed set while
//     sigma^(k-1) sets were completable).
//  2. A draw from the Lemma 9 / Figure 1 gadget distribution shows that
//     even randPr cannot beat the construction.
//
//   $ ./adversarial_gadget [sigma] [k] [ell]
#include <cstdlib>
#include <iostream>

#include "algos/baselines.hpp"
#include "algos/offline.hpp"
#include "core/bounds.hpp"
#include "core/rand_pr.hpp"
#include "design/lower_bounds.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace osp;
  const std::size_t sigma =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t k =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;
  const std::size_t ell =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 4;

  std::cout << "== Part 1: Theorem 3 adversary (sigma=" << sigma
            << ", k=" << k << ") ==\n";
  std::cout << "The adversary builds " << sigma << "^" << k
            << " sets of size " << k
            << " adaptively, reacting to each decision.\n\n";

  Table table({"victim", "benefit", "opt >=", "forced ratio"});
  const std::size_t num_algs = make_deterministic_baselines().size();
  for (std::size_t ai = 0; ai < num_algs; ++ai) {
    auto alg = std::move(make_deterministic_baselines()[ai]);
    AdaptiveAdversaryResult r = run_theorem3_adversary(*alg, sigma, k);
    table.row({alg->name(), fmt(r.alg_outcome.benefit, 0),
               fmt(r.opt_lower_bound, 0),
               fmt(theorem3_lower_bound(sigma, k), 0) + "x"});
  }
  table.print(std::cout);

  // Replay the greedy transcript against randPr: randomization escapes.
  GreedyFirst victim;
  AdaptiveAdversaryResult trap = run_theorem3_adversary(victim, sigma, k);
  Rng master(5);
  RunningStat rp;
  for (int t = 0; t < 400; ++t) {
    RandPr alg(master.split(t));
    rp.add(play(trap.transcript, alg).benefit);
  }
  std::cout << "\nrandPr on the same (now oblivious) transcript: E[benefit] "
            << rp.mean() << " +/- " << rp.ci95_halfwidth()
            << "  — randomization breaks the adaptive trap.\n";

  std::cout << "\n== Part 2: Lemma 9 gadget distribution (ell = " << ell
            << ") ==\n";
  Rng rng(17);
  Lemma9Instance li = build_lemma9_instance(ell, rng);
  InstanceStats st = li.instance.stats();
  std::cout << "Drawn instance: " << li.instance.num_sets()
            << " sets (ell^4), " << li.instance.num_elements()
            << " elements, uniform set size " << st.k_max
            << ", sigma_max " << st.sigma_max << ".\n"
            << "Planted disjoint solution: " << li.planted.size()
            << " sets (= ell^3), so opt >= " << li.planted.size() << ".\n\n";

  RunningStat randpr_stat;
  for (int t = 0; t < 40; ++t) {
    RandPr alg(master.split(1000 + t));
    randpr_stat.add(play(li.instance, alg).benefit);
  }
  GreedyFirst greedy;
  double greedy_benefit = play(li.instance, greedy).benefit;

  std::cout << "greedy-first completes " << greedy_benefit
            << " sets; randPr completes " << randpr_stat.mean() << " +/- "
            << randpr_stat.ci95_halfwidth() << " in expectation.\n"
            << "Competitive ratio on this draw >= "
            << static_cast<double>(li.planted.size()) / randpr_stat.mean()
            << "x  (Theorem 2 predicts growth like ell^2 * polylog "
               "factors).\n";
  return 0;
}
